/**
 * @file
 * Reproduces Figure 9: SMIL — Weighted Speedup as a function of the
 * static in-flight memory instruction limits (Limit_k0, Limit_k1) for
 * one workload from each class: pf+bp (C+C), bp+ks (C+M), sv+ks
 * (M+M). The paper's signatures: C+C wants no limiting; C+M improves
 * when the memory kernel's limit is small; M+M has an interior
 * optimum (the paper finds (3,1) for sv+ks).
 */

#include "bench_util.hpp"

#include "core/mil.hpp"

namespace {

using namespace ckesim;

std::string
label(int l)
{
    return l == kSmilInf ? std::string("Inf") : std::to_string(l);
}

void
runFigure9(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();
    const std::vector<int> grid = smilLimitGrid(fullMode());
    const std::vector<Workload> pairs = {makeWorkload({"pf", "bp"}),
                                         makeWorkload({"bp", "ks"}),
                                         makeWorkload({"sv", "ks"})};

    // One job per (pair, limit, limit) grid point; the whole sweep
    // fans out across the engine and the per-kernel isolated
    // baselines are simulated once and shared by all grid points.
    std::vector<SimJob> jobs;
    for (const Workload &w : pairs) {
        for (int l0 : grid) {
            for (int l1 : grid) {
                SchemeSpec spec =
                    makeScheme(PartitionScheme::WarpedSlicer,
                               BmiMode::None, MilMode::Static);
                spec.smil_limits[0] = l0;
                spec.smil_limits[1] = l1;
                jobs.push_back(
                    SimJob::concurrent(cfg, cycles, w, spec));
            }
        }
    }
    const std::vector<SimResult> results = engine.sweep(jobs);

    std::size_t idx = 0;
    for (const Workload &w : pairs) {
        printHeader("Figure 9: SMIL sweep for " + w.name() + " (" +
                    workloadClassName(w.cls()) +
                    "), Weighted Speedup");
        std::printf("%10s", "k0\\k1");
        for (int l1 : grid)
            std::printf(" %6s", label(l1).c_str());
        std::printf("\n");

        double best = 0.0;
        int best_l0 = kSmilInf, best_l1 = kSmilInf;
        for (int l0 : grid) {
            std::printf("%10s", label(l0).c_str());
            for (int l1 : grid) {
                const ConcurrentResult &res =
                    *results[idx++].concurrent;
                std::printf(" %6.3f", res.weighted_speedup);
                if (res.weighted_speedup > best) {
                    best = res.weighted_speedup;
                    best_l0 = l0;
                    best_l1 = l1;
                }
            }
            std::printf("\n");
        }
        std::printf("optimum: (%s, %s) with WS %.3f\n",
                    label(best_l0).c_str(), label(best_l1).c_str(),
                    best);
        report.counters["best_ws_" + w.name()] = best;
    }
    std::printf("\npaper: pf+bp monotone in both limits (no "
                "throttling wanted); bp+ks best with small Limit_k1; "
                "sv+ks interior optimum near (3,1)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure9/smil_sweep",
                                              runFigure9);
    });
}
