/**
 * @file
 * Reproduces Figure 9: SMIL — Weighted Speedup as a function of the
 * static in-flight memory instruction limits (Limit_k0, Limit_k1) for
 * one workload from each class: pf+bp (C+C), bp+ks (C+M), sv+ks
 * (M+M). The paper's signatures: C+C wants no limiting; C+M improves
 * when the memory kernel's limit is small; M+M has an interior
 * optimum (the paper finds (3,1) for sv+ks).
 */

#include "bench_util.hpp"

#include "core/mil.hpp"

namespace {

using namespace ckesim;

void
sweepPair(Runner &runner, const Workload &w, benchmark::State &state)
{
    const std::vector<int> grid = smilLimitGrid(fullMode());

    auto label = [](int l) {
        return l == kSmilInf ? std::string("Inf")
                             : std::to_string(l);
    };

    printHeader("Figure 9: SMIL sweep for " + w.name() + " (" +
                workloadClassName(w.cls()) + "), Weighted Speedup");
    std::printf("%10s", "k0\\k1");
    for (int l1 : grid)
        std::printf(" %6s", label(l1).c_str());
    std::printf("\n");

    double best = 0.0;
    int best_l0 = kSmilInf, best_l1 = kSmilInf;
    for (int l0 : grid) {
        std::printf("%10s", label(l0).c_str());
        for (int l1 : grid) {
            SchemeSpec spec =
                makeScheme(PartitionScheme::WarpedSlicer,
                           BmiMode::None, MilMode::Static);
            spec.smil_limits[0] = l0;
            spec.smil_limits[1] = l1;
            const ConcurrentResult res = runner.run(w, spec);
            std::printf(" %6.3f", res.weighted_speedup);
            if (res.weighted_speedup > best) {
                best = res.weighted_speedup;
                best_l0 = l0;
                best_l1 = l1;
            }
        }
        std::printf("\n");
    }
    std::printf("optimum: (%s, %s) with WS %.3f\n",
                label(best_l0).c_str(), label(best_l1).c_str(),
                best);
    const std::string key = "best_ws_" + w.name();
    state.counters[key] = best;
}

void
runFigure9(benchmark::State &state)
{
    Runner runner(benchConfig(), benchCycles());
    sweepPair(runner, makeWorkload({"pf", "bp"}), state);
    sweepPair(runner, makeWorkload({"bp", "ks"}), state);
    sweepPair(runner, makeWorkload({"sv", "ks"}), state);
    std::printf("\npaper: pf+bp monotone in both limits (no "
                "throttling wanted); bp+ks best with small Limit_k1; "
                "sv+ks interior optimum near (3,1)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure9/smil_sweep",
                                              runFigure9);
    });
}
