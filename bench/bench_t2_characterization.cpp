/**
 * @file
 * Reproduces Table 2: per-benchmark static occupancies, dynamic
 * Cinst/Minst and Req/Minst, isolated L1D miss and rsfail rates, and
 * the compute/memory classification (>20% LSU stall cycles => M,
 * Section 2.4).
 */

#include "bench_util.hpp"

#include "kernels/profile.hpp"

namespace {

using namespace ckesim;

void
runTable2(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();

    std::vector<SimJob> jobs;
    for (const KernelProfile &p : benchmarkSuite())
        jobs.push_back(SimJob::isolated(cfg, cycles, p));
    const std::vector<SimResult> results = engine.sweep(jobs);

    printHeader("Table 2: Benchmark characterization "
                "(isolated execution)");
    std::printf("%-5s %6s %7s %9s %8s %10s %9s %10s %12s %5s\n",
                "bench", "RF_oc", "SMEM_oc", "Thread_oc", "TB_oc",
                "Cinst/Min", "Req/Minst", "l1d_miss", "l1d_rsfail",
                "type");

    int classified_memory = 0;
    std::size_t idx = 0;
    for (const KernelProfile &p : benchmarkSuite()) {
        const IsolatedResult &res = *results[idx++].isolated;
        const SmStats &sm = res.sm_stats;
        const double lsu_stall = sm.lsuStallFraction();
        const bool memory_type = lsu_stall > 0.20;
        if (memory_type)
            ++classified_memory;

        std::printf(
            "%-5s %5.1f%% %6.1f%% %8.1f%% %7.1f%% %10.1f %9.1f "
            "%10.2f %12.2f %5s\n",
            p.name.c_str(), 100.0 * p.rfOccupancy(cfg.sm),
            100.0 * p.smemOccupancy(cfg.sm),
            100.0 * p.threadOccupancy(cfg.sm),
            100.0 * p.tbOccupancy(cfg.sm), res.stats.cinstPerMinst(),
            res.stats.reqPerMinst(), res.stats.l1dMissRate(),
            res.stats.l1dRsFailRate(), memory_type ? "M" : "C");
    }

    std::printf("\npaper: 7 compute-intensive (C), "
                "6 memory-intensive (M)\n");
    report.counters["memory_kernels"] = classified_memory;
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("table2/characterization",
                                              runTable2);
    });
}
