/**
 * @file
 * Reproduces Figure 8: warp instructions issued per 1K cycles for
 * bp+sv under WS, WS-RBMI and WS-QBMI, plus the normalized-IPC bars
 * of Figure 8(d). The paper's signature: balanced memory issuing lets
 * the compute-intensive kernel issue more instructions (bp's
 * normalized IPC rises 0.39 -> 0.45 (RBMI) -> 0.48 (QBMI)) while sv
 * stays roughly stable.
 */

#include "bench_util.hpp"

#include "gpu.hpp"

namespace {

using namespace ckesim;

void
runFigure8(benchmark::State &state)
{
    Runner runner(benchConfig(), benchCycles());
    const Workload w = makeWorkload({"bp", "sv"});
    const Cycle interval = 1000;

    struct SchemeRun
    {
        NamedScheme scheme;
        TimeSeries bp{1000}, sv{1000};
        ConcurrentResult res;
    };
    std::vector<SchemeRun> runs;
    for (NamedScheme s : {NamedScheme::WS, NamedScheme::WS_RBMI,
                          NamedScheme::WS_QBMI}) {
        SchemeRun r;
        r.scheme = s;
        SchemeSpec spec = runner.scheme(s, w);
        Gpu gpu(runner.config(), w, spec);
        gpu.attachSeries(0, &r.bp, nullptr);
        gpu.attachSeries(1, &r.sv, nullptr);
        gpu.run(spec.ws_profile_window + runner.cycles());
        // Metrics via the runner for isolated-baseline consistency.
        r.res = runner.run(w, s);
        runs.push_back(std::move(r));
    }

    printHeader("Figure 8(a-c): warp instructions issued / 1K "
                "cycles, bp+sv");
    std::printf("%8s", "cycle(k)");
    for (const SchemeRun &r : runs)
        std::printf(" %9s:bp %9s:sv",
                    schemeName(r.scheme).c_str(),
                    schemeName(r.scheme).c_str());
    std::printf("\n");
    const std::size_t bins = static_cast<std::size_t>(
        (20000 + runner.cycles()) / interval);
    const std::size_t step = std::max<std::size_t>(bins / 16, 1);
    for (std::size_t b = 0; b < bins; b += step) {
        std::printf("%8zu", b);
        for (const SchemeRun &r : runs)
            std::printf(" %12llu %12llu",
                        static_cast<unsigned long long>(
                            r.bp.binCount(b)),
                        static_cast<unsigned long long>(
                            r.sv.binCount(b)));
        std::printf("\n");
    }

    printHeader("Figure 8(d): normalized IPC");
    std::printf("%-10s %8s %8s\n", "scheme", "bp", "sv");
    for (const SchemeRun &r : runs) {
        std::printf("%-10s %8.3f %8.3f\n",
                    schemeName(r.scheme).c_str(), r.res.norm_ipc[0],
                    r.res.norm_ipc[1]);
    }
    std::printf("\npaper: bp 0.39 (WS) -> 0.45 (WS-RBMI) -> 0.48 "
                "(WS-QBMI); sv roughly stable\n");

    state.counters["bp_ws"] = runs[0].res.norm_ipc[0];
    state.counters["bp_rbmi"] = runs[1].res.norm_ipc[0];
    state.counters["bp_qbmi"] = runs[2].res.norm_ipc[0];
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure8/bmi_timeline",
                                              runFigure8);
    });
}
