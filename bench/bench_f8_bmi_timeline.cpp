/**
 * @file
 * Reproduces Figure 8: warp instructions issued per 1K cycles for
 * bp+sv under WS, WS-RBMI and WS-QBMI, plus the normalized-IPC bars
 * of Figure 8(d). The paper's signature: balanced memory issuing lets
 * the compute-intensive kernel issue more instructions (bp's
 * normalized IPC rises 0.39 -> 0.45 (RBMI) -> 0.48 (QBMI)) while sv
 * stays roughly stable.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

const NamedScheme kSchemes[] = {NamedScheme::WS, NamedScheme::WS_RBMI,
                                NamedScheme::WS_QBMI};

void
runFigure8(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();
    const Workload w = makeWorkload({"bp", "sv"});
    const Cycle interval{1000};

    // One job per scheme captures the issue series AND the metrics in
    // a single simulation (the pre-engine code ran each scheme twice).
    std::vector<SimJob> jobs;
    for (NamedScheme s : kSchemes) {
        SimJob job = SimJob::concurrent(cfg, cycles, w, s);
        job.series.issue = true;
        job.series.interval = interval;
        jobs.push_back(job);
    }
    const std::vector<SimResult> results = engine.sweep(jobs);

    printHeader("Figure 8(a-c): warp instructions issued / 1K "
                "cycles, bp+sv");
    std::printf("%8s", "cycle(k)");
    for (NamedScheme s : kSchemes)
        std::printf(" %9s:bp %9s:sv", schemeName(s).c_str(),
                    schemeName(s).c_str());
    std::printf("\n");
    const Cycle window = makeScheme(PartitionScheme::WarpedSlicer,
                                    BmiMode::None, MilMode::None)
                             .ws_profile_window;
    const std::size_t bins =
        static_cast<std::size_t>((window + cycles) / interval);
    const std::size_t step = std::max<std::size_t>(bins / 16, 1);
    for (std::size_t b = 0; b < bins; b += step) {
        std::printf("%8zu", b);
        for (const SimResult &r : results)
            std::printf(" %12llu %12llu",
                        static_cast<unsigned long long>(
                            r.concurrent->issue_series[0].binCount(b)),
                        static_cast<unsigned long long>(
                            r.concurrent->issue_series[1].binCount(
                                b)));
        std::printf("\n");
    }

    printHeader("Figure 8(d): normalized IPC");
    std::printf("%-10s %8s %8s\n", "scheme", "bp", "sv");
    for (std::size_t i = 0; i < std::size(kSchemes); ++i) {
        const ConcurrentResult &r = *results[i].concurrent;
        std::printf("%-10s %8.3f %8.3f\n",
                    schemeName(kSchemes[i]).c_str(), r.norm_ipc[0],
                    r.norm_ipc[1]);
    }
    std::printf("\npaper: bp 0.39 (WS) -> 0.45 (WS-RBMI) -> 0.48 "
                "(WS-QBMI); sv roughly stable\n");

    report.counters["bp_ws"] = results[0].concurrent->norm_ipc[0];
    report.counters["bp_rbmi"] = results[1].concurrent->norm_ipc[0];
    report.counters["bp_qbmi"] = results[2].concurrent->norm_ipc[0];
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure8/bmi_timeline",
                                              runFigure8);
    });
}
