/**
 * @file
 * Reproduces the Section 4.5 "Further Discussion" ablations:
 *
 * 1. Partitioning the cache-miss-related resources (an even per-
 *    kernel MSHR split) "cannot improve performance" because the
 *    in-order LSU still blocks behind saturated co-runner accesses.
 * 2. L1D cache bypassing for the memory-intensive kernel relieves
 *    line contention but "offloads transactions to the lower
 *    levels", so it does not replace memory instruction limiting —
 *    and composes with it.
 * 3. Local vs global DMIL (Section 3.3.2): with every SM running the
 *    same kernel pair, the cheaper global generator tracks local
 *    DMIL closely; the paper keeps local DMIL for flexibility.
 */

#include "bench_util.hpp"

#include <cmath>

namespace {

using namespace ckesim;

const std::vector<std::vector<std::string>> kPairs = {
    {"bp", "sv"}, {"bp", "ks"}, {"sv", "ks"}, {"pf", "bp"}};

void
runDiscussion(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();

    // Six spec variants per pair, all swept at once.
    std::vector<Workload> workloads;
    std::vector<SimJob> jobs;
    for (const auto &names : kPairs) {
        const Workload w = makeWorkload(names);
        workloads.push_back(w);

        const SchemeSpec base =
            engine.makeNamedScheme(cfg, cycles, NamedScheme::WS, w);

        SchemeSpec mshr = base;
        mshr.mshr_partition = true;

        // Bypass the memory-intensive member(s).
        SchemeSpec bypass = base;
        for (int k = 0; k < w.numKernels(); ++k)
            if (w.kernels[static_cast<std::size_t>(k)]
                    ->isMemoryIntensive())
                bypass.bypass_l1d[static_cast<std::size_t>(k)] =
                    true;

        const SchemeSpec dmil = engine.makeNamedScheme(
            cfg, cycles, NamedScheme::WS_DMIL, w);

        SchemeSpec dmil_bypass = dmil;
        dmil_bypass.bypass_l1d = bypass.bypass_l1d;

        SchemeSpec global = dmil;
        global.global_dmil = true;

        for (const SchemeSpec &spec :
             {base, mshr, bypass, dmil, dmil_bypass, global})
            jobs.push_back(SimJob::concurrent(cfg, cycles, w, spec));
    }
    const std::vector<SimResult> results = engine.sweep(jobs);

    printHeader("Section 4.5: MSHR partitioning / L1D bypassing / "
                "global DMIL (Weighted Speedup)");
    std::printf("%-8s %8s %10s %10s %8s %10s %10s\n", "pair", "WS",
                "MSHRpart", "bypass(M)", "DMIL", "DMIL+byp",
                "globDMIL");

    double g[6] = {0, 0, 0, 0, 0, 0};
    std::size_t idx = 0;
    for (const Workload &w : workloads) {
        double v[6];
        for (double &x : v)
            x = results[idx++].concurrent->weighted_speedup;
        std::printf("%-8s %8.3f %10.3f %10.3f %8.3f %10.3f %10.3f\n",
                    w.name().c_str(), v[0], v[1], v[2], v[3], v[4],
                    v[5]);
        for (int i = 0; i < 6; ++i)
            g[i] += std::log(std::max(v[i], 1e-9));
    }
    for (double &x : g)
        x = std::exp(x / static_cast<double>(kPairs.size()));
    std::printf("%-8s %8.3f %10.3f %10.3f %8.3f %10.3f %10.3f\n",
                "gmean", g[0], g[1], g[2], g[3], g[4], g[5]);

    std::printf("\npaper: MSHR partitioning does not beat WS (in-"
                "order LSU blocking); bypassing alone shifts pressure "
                "downstream; DMIL remains the effective mechanism, "
                "and global DMIL tracks local DMIL when all SMs run "
                "the same pair\n");

    report.counters["ws"] = g[0];
    report.counters["mshr_partition"] = g[1];
    report.counters["dmil"] = g[3];
    report.counters["global_dmil"] = g[5];
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("s45/discussion",
                                              runDiscussion);
    });
}
