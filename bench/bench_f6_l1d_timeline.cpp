/**
 * @file
 * Reproduces Figure 6: L1D accesses per 1K-cycle window for bp and sv
 * (a) each in isolation and (b,c) concurrently under plain
 * Warped-Slicer. The paper's signature: both kernels sustain healthy
 * access rates alone, but under concurrent execution sv dominates the
 * L1D while bp starves.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

void
runFigure6(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();
    const Cycle interval{1000};

    auto print_series = [&](const char *title,
                            const std::vector<const TimeSeries *> &ts,
                            const std::vector<std::string> &names,
                            Cycle from) {
        printHeader(title);
        std::printf("%8s", "cycle(k)");
        for (const std::string &n : names)
            std::printf(" %10s", n.c_str());
        std::printf("\n");
        const std::size_t bins =
            static_cast<std::size_t>((from + cycles) / interval);
        const std::size_t step = std::max<std::size_t>(bins / 20, 1);
        for (std::size_t b = static_cast<std::size_t>(from / interval);
             b < bins; b += step) {
            std::printf("%8zu", b);
            for (const TimeSeries *t : ts)
                std::printf(" %10llu",
                            static_cast<unsigned long long>(
                                t->binCount(b)));
            std::printf("\n");
        }
    };

    // (a)/(b) isolated and (c) concurrent, as one engine sweep. The
    // series request is part of each job's content hash, so these do
    // not collide with series-free isolated baselines elsewhere.
    SimJob bp_job = SimJob::isolated(cfg, cycles, findProfile("bp"));
    SimJob sv_job = SimJob::isolated(cfg, cycles, findProfile("sv"));
    bp_job.series.l1d = sv_job.series.l1d = true;
    bp_job.series.interval = sv_job.series.interval = interval;

    const Workload pair = makeWorkload({"bp", "sv"});
    const SchemeSpec ws_spec = makeScheme(
        PartitionScheme::WarpedSlicer, BmiMode::None, MilMode::None);
    SimJob cke_job = SimJob::concurrent(cfg, cycles, pair, ws_spec);
    cke_job.series.l1d = true;
    cke_job.series.interval = interval;

    const std::vector<SimResult> results =
        engine.sweep({bp_job, sv_job, cke_job});
    const TimeSeries &bp_iso = results[0].isolated->l1d_series[0];
    const TimeSeries &sv_iso = results[1].isolated->l1d_series[0];
    const TimeSeries &bp_cke = results[2].concurrent->l1d_series[0];
    const TimeSeries &sv_cke = results[2].concurrent->l1d_series[1];

    print_series("Figure 6(a,b): L1D accesses / 1K cycles, isolated",
                 {&bp_iso, &sv_iso}, {"bp", "sv"}, Cycle{});
    print_series("Figure 6(c): L1D accesses / 1K cycles, bp+sv "
                 "concurrent (WS)",
                 {&bp_cke, &sv_cke}, {"bp", "sv"}, Cycle{});

    // Aggregate starvation statistic over the measurement phase.
    const Cycle window = ws_spec.ws_profile_window;
    const std::size_t first =
        static_cast<std::size_t>(window / interval) + 1;
    const std::size_t last_iso =
        static_cast<std::size_t>(cycles / interval);
    const double bp_alone = bp_iso.meanOver(1, last_iso);
    const double sv_alone = sv_iso.meanOver(1, last_iso);
    const std::size_t last_cke =
        static_cast<std::size_t>((window + cycles) / interval);
    const double bp_shared = bp_cke.meanOver(first, last_cke);
    const double sv_shared = sv_cke.meanOver(first, last_cke);

    std::printf("\nmean L1D accesses per 1K cycles (per GPU):\n");
    std::printf("  bp: %8.1f alone -> %8.1f shared (%.0f%%)\n",
                bp_alone, bp_shared, 100.0 * bp_shared / bp_alone);
    std::printf("  sv: %8.1f alone -> %8.1f shared (%.0f%%)\n",
                sv_alone, sv_shared, 100.0 * sv_shared / sv_alone);
    std::printf("paper: sv dominates the shared L1D while bp "
                "starves (Figure 6(c))\n");

    report.counters["bp_retention"] = bp_shared / bp_alone;
    report.counters["sv_retention"] = sv_shared / sv_alone;
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure6/l1d_timeline",
                                              runFigure6);
    });
}
