/**
 * @file
 * Reproduces Figure 13: QBMI and DMIL on top of SMK's DRF partition —
 * Weighted Speedup and normalized ANTT by class for SMK-(P+W),
 * SMK-(P+QBMI), SMK-(P+DMIL).
 *
 * Paper headline: average WS 1.10 / 1.15 / 1.40 — +4.4% and +27.2%
 * over SMK-(P+W); ANTT improves 49.2% / 64.6%.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

const NamedScheme kSchemes[] = {NamedScheme::SMK_PW,
                                NamedScheme::SMK_P_QBMI,
                                NamedScheme::SMK_P_DMIL};

void
runFigure13(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();

    std::vector<std::string> names;
    for (NamedScheme s : kSchemes)
        names.push_back(schemeName(s));

    const std::vector<Workload> pairs = benchPairs();
    std::vector<SimJob> jobs;
    for (const Workload &w : pairs)
        for (NamedScheme s : kSchemes)
            jobs.push_back(SimJob::concurrent(cfg, cycles, w, s));
    const std::vector<SimResult> results = engine.sweep(jobs);

    ClassTable ws("Figure 13(a): Weighted Speedup on SMK partition",
                  names, 14);
    ClassTable antt_t("Figure 13(b): ANTT normalized to SMK-(P+W) "
                      "(lower is better)",
                      names, 14);
    std::size_t idx = 0;
    for (const Workload &w : pairs) {
        for (std::size_t s = 0; s < std::size(kSchemes); ++s) {
            const ConcurrentResult &r = *results[idx++].concurrent;
            ws.add(w.cls(), s, r.weighted_speedup);
            antt_t.add(w.cls(), s, r.antt_value);
        }
    }
    ws.print();
    antt_t.print(0);

    const double base = ws.geomeanAll(0);
    const double qbmi = ws.geomeanAll(1);
    const double dmil = ws.geomeanAll(2);
    std::printf("\nWS improvement over SMK-(P+W): QBMI %+.1f%%, "
                "DMIL %+.1f%%  (paper: +4.4%%, +27.2%%)\n",
                100.0 * (qbmi / base - 1.0),
                100.0 * (dmil / base - 1.0));

    report.counters["smk_pw"] = base;
    report.counters["smk_qbmi"] = qbmi;
    report.counters["smk_dmil"] = dmil;
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure13/smk_eval",
                                              runFigure13);
    });
}
