/**
 * @file
 * Reproduces Figure 13: QBMI and DMIL on top of SMK's DRF partition —
 * Weighted Speedup and normalized ANTT by class for SMK-(P+W),
 * SMK-(P+QBMI), SMK-(P+DMIL).
 *
 * Paper headline: average WS 1.10 / 1.15 / 1.40 — +4.4% and +27.2%
 * over SMK-(P+W); ANTT improves 49.2% / 64.6%.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

const NamedScheme kSchemes[] = {NamedScheme::SMK_PW,
                                NamedScheme::SMK_P_QBMI,
                                NamedScheme::SMK_P_DMIL};

void
runFigure13(benchmark::State &state)
{
    Runner runner(benchConfig(), benchCycles());

    std::map<NamedScheme, ClassAggregate> ws, antt_v;
    for (const Workload &w : benchPairs()) {
        for (NamedScheme s : kSchemes) {
            const ConcurrentResult r = runner.run(w, s);
            ws[s].add(w.cls(), r.weighted_speedup);
            antt_v[s].add(w.cls(), r.antt_value);
        }
    }

    printHeader("Figure 13(a): Weighted Speedup on SMK partition");
    std::printf("%-8s", "class");
    for (NamedScheme s : kSchemes)
        std::printf(" %14s", schemeName(s).c_str());
    std::printf("\n");
    for (WorkloadClass cls :
         {WorkloadClass::CC, WorkloadClass::CM, WorkloadClass::MM}) {
        std::printf("%-8s", classLabel(cls));
        for (NamedScheme s : kSchemes)
            std::printf(" %14.3f", ws[s].geomean(cls));
        std::printf("\n");
    }
    std::printf("%-8s", "ALL");
    for (NamedScheme s : kSchemes)
        std::printf(" %14.3f", ws[s].geomeanAll());
    std::printf("\n");

    printHeader("Figure 13(b): ANTT normalized to SMK-(P+W) "
                "(lower is better)");
    std::printf("%-8s", "class");
    for (NamedScheme s : kSchemes)
        std::printf(" %14s", schemeName(s).c_str());
    std::printf("\n");
    for (WorkloadClass cls :
         {WorkloadClass::CC, WorkloadClass::CM, WorkloadClass::MM}) {
        std::printf("%-8s", classLabel(cls));
        const double base =
            antt_v[NamedScheme::SMK_PW].geomean(cls);
        for (NamedScheme s : kSchemes)
            std::printf(" %14.3f",
                        base > 0 ? antt_v[s].geomean(cls) / base
                                 : 0.0);
        std::printf("\n");
    }

    const double base = ws[NamedScheme::SMK_PW].geomeanAll();
    const double qbmi = ws[NamedScheme::SMK_P_QBMI].geomeanAll();
    const double dmil = ws[NamedScheme::SMK_P_DMIL].geomeanAll();
    std::printf("\nWS improvement over SMK-(P+W): QBMI %+.1f%%, "
                "DMIL %+.1f%%  (paper: +4.4%%, +27.2%%)\n",
                100.0 * (qbmi / base - 1.0),
                100.0 * (dmil / base - 1.0));

    state.counters["smk_pw"] = base;
    state.counters["smk_qbmi"] = qbmi;
    state.counters["smk_dmil"] = dmil;
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure13/smk_eval",
                                              runFigure13);
    });
}
