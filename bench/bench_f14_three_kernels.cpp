/**
 * @file
 * Reproduces Figure 14: scalability to 3-kernel concurrent execution
 * on top of Warped-Slicer — Weighted Speedup and normalized ANTT for
 * the four classes C+C+C, C+C+M, C+M+M, M+M+M.
 *
 * Paper headline: WS-QBMI and WS-DMIL improve WS by 3.2% and 19.4%
 * and ANTT by 58.3% and 68.7% over WS.
 */

#include "bench_util.hpp"

#include <algorithm>
#include <map>

namespace {

using namespace ckesim;

const NamedScheme kSchemes[] = {NamedScheme::WS, NamedScheme::WS_QBMI,
                                NamedScheme::WS_DMIL};

std::string
tripleClass(const Workload &w)
{
    int m = 0;
    for (const KernelProfile *k : w.kernels)
        m += k->isMemoryIntensive() ? 1 : 0;
    switch (m) {
      case 0:
        return "C+C+C";
      case 1:
        return "C+C+M";
      case 2:
        return "C+M+M";
      default:
        return "M+M+M";
    }
}

void
runFigure14(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();

    const std::vector<Workload> triples = representativeTriples();
    std::vector<SimJob> jobs;
    for (const Workload &w : triples)
        for (NamedScheme s : kSchemes)
            jobs.push_back(SimJob::concurrent(cfg, cycles, w, s));
    const std::vector<SimResult> results = engine.sweep(jobs);

    std::map<NamedScheme, std::map<std::string, std::vector<double>>>
        ws, antt_v;
    std::size_t idx = 0;
    for (const Workload &w : triples) {
        const std::string cls = tripleClass(w);
        for (NamedScheme s : kSchemes) {
            const ConcurrentResult &r = *results[idx++].concurrent;
            ws[s][cls].push_back(std::max(r.weighted_speedup, 1e-9));
            antt_v[s][cls].push_back(std::max(r.antt_value, 1e-9));
        }
    }

    const std::vector<std::string> classes = {"C+C+C", "C+C+M",
                                              "C+M+M", "M+M+M"};

    printHeader("Figure 14(a): 3-kernel Weighted Speedup");
    std::printf("%-8s", "class");
    for (NamedScheme s : kSchemes)
        std::printf(" %10s", schemeName(s).c_str());
    std::printf("\n");
    for (const std::string &cls : classes) {
        std::printf("%-8s", cls.c_str());
        for (NamedScheme s : kSchemes)
            std::printf(" %10.3f", geomean(ws[s][cls]));
        std::printf("\n");
    }

    printHeader("Figure 14(b): 3-kernel ANTT normalized to WS "
                "(lower is better)");
    std::printf("%-8s", "class");
    for (NamedScheme s : kSchemes)
        std::printf(" %10s", schemeName(s).c_str());
    std::printf("\n");
    std::vector<double> all_ws[3], all_antt[3];
    for (const std::string &cls : classes) {
        std::printf("%-8s", cls.c_str());
        const double base = geomean(antt_v[NamedScheme::WS][cls]);
        int i = 0;
        for (NamedScheme s : kSchemes) {
            std::printf(" %10.3f",
                        base > 0 ? geomean(antt_v[s][cls]) / base
                                 : 0.0);
            for (double v : ws[s][cls])
                all_ws[i].push_back(v);
            for (double v : antt_v[s][cls])
                all_antt[i].push_back(v);
            ++i;
        }
        std::printf("\n");
    }

    std::printf("\nGmean WS: %.3f (WS) %.3f (QBMI) %.3f (DMIL); "
                "paper improvements: +3.2%% QBMI, +19.4%% DMIL\n",
                geomean(all_ws[0]), geomean(all_ws[1]),
                geomean(all_ws[2]));

    report.counters["ws"] = geomean(all_ws[0]);
    report.counters["ws_qbmi"] = geomean(all_ws[1]);
    report.counters["ws_dmil"] = geomean(all_ws[2]);
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure14/three_kernels",
                                              runFigure14);
    });
}
