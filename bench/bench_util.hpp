/**
 * @file
 * google-benchmark adapter for the per-figure bench binaries. The
 * experiments themselves live in the shared ExperimentRegistry
 * (src/metrics/experiment.hpp) and know nothing about the benchmark
 * framework; this header wires the registry into benchmark cases and
 * handles the shared --jobs/--list/--filter/--tables/--fast CLI
 * knobs, so
 * every bench runs standalone, supports parallel sweeps, and also
 * reports wall time + headline counters through the framework.
 */

#ifndef CKESIM_BENCH_BENCH_UTIL_HPP
#define CKESIM_BENCH_BENCH_UTIL_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>

#include "metrics/experiment.hpp"
#include "metrics/runner.hpp"

namespace ckesim::benchutil {

/** Register a named experiment into the shared registry. */
inline void
registerExperiment(const std::string &name, ExperimentFn body)
{
    ExperimentRegistry::instance().add(name, std::move(body));
}

/**
 * Standard main body: parse shared flags, register experiments via
 * @p setup, then run — through google-benchmark by default, or
 * directly in --tables mode (stable stdout for diffing; engine stats
 * go to stderr).
 */
inline int
benchMain(int argc, char **argv, const std::function<void()> &setup)
{
    BenchOptions opts = parseBenchArgs(argc, argv);
    setBenchJobs(opts.jobs);
    benchEngine().setFastForward(opts.fast);
    if (!opts.resume.empty()) {
        const std::size_t recovered =
            attachBenchJournal(opts.resume);
        std::fprintf(stderr,
                     "journal '%s': %zu result(s) recovered\n",
                     opts.resume.c_str(), recovered);
    }
    setup();

    const auto &entries = ExperimentRegistry::instance().entries();
    if (opts.list) {
        for (const auto &e : entries)
            std::printf("%s\n", e.name.c_str());
        return 0;
    }

    if (opts.tables_only) {
        for (const auto &e : entries) {
            if (!opts.matches(e.name))
                continue;
            BenchReport report;
            e.fn(report);
        }
        printSweepStats(stderr);
        return 0;
    }

    for (const auto &e : entries) {
        if (!opts.matches(e.name))
            continue;
        benchmark::RegisterBenchmark(
            e.name.c_str(),
            [fn = e.fn](benchmark::State &state) {
                for (auto _ : state) {
                    BenchReport report;
                    fn(report);
                    exportSweepStats(report);
                    for (const auto &[key, value] : report.counters)
                        state.counters[key] = value;
                }
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
    }

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    printSweepStats(stderr);
    benchmark::Shutdown();
    return 0;
}

} // namespace ckesim::benchutil

#endif // CKESIM_BENCH_BENCH_UTIL_HPP
