/**
 * @file
 * Shared scaffolding for the per-figure bench binaries: every bench
 * prints its paper-style table from inside a google-benchmark case so
 * `bench_*` runs standalone and also reports wall time + headline
 * counters through the benchmark framework.
 */

#ifndef CKESIM_BENCH_BENCH_UTIL_HPP
#define CKESIM_BENCH_BENCH_UTIL_HPP

#include <benchmark/benchmark.h>

#include <cstdio>
#include <functional>
#include <string>

#include "metrics/experiment.hpp"
#include "metrics/runner.hpp"

namespace ckesim::benchutil {

/**
 * Register a one-iteration benchmark that runs @p body. The body
 * receives the State so it can export counters.
 */
inline void
registerExperiment(const std::string &name,
                   std::function<void(benchmark::State &)> body)
{
    benchmark::RegisterBenchmark(
        name.c_str(),
        [body](benchmark::State &state) {
            for (auto _ : state)
                body(state);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
}

/** Standard main body: initialize, register via @p setup, run. */
inline int
benchMain(int argc, char **argv, const std::function<void()> &setup)
{
    benchmark::Initialize(&argc, argv);
    setup();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}

} // namespace ckesim::benchutil

#endif // CKESIM_BENCH_BENCH_UTIL_HPP
