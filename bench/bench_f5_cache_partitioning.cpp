/**
 * @file
 * Reproduces Figure 5: the ineffectiveness of CPU-style L1D cache
 * partitioning (UCP) for intra-SM sharing — (a) Weighted Speedup by
 * class and for the six case-study pairs, (b) per-kernel L1D miss
 * rates and (c) per-kernel rsfail rates under WS vs WS-L1DPartition.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

const std::vector<std::vector<std::string>> kCasePairs = {
    {"pf", "bp"}, {"bp", "hs"}, // C+C
    {"bp", "sv"}, {"bp", "ks"}, // C+M
    {"sv", "ks"}, {"sv", "ax"}, // M+M
};

void
runFigure5(benchmark::State &state)
{
    Runner runner(benchConfig(), benchCycles());

    // (a) class geomeans.
    ClassAggregate ws_agg, ucp_agg;
    for (const Workload &w : benchPairs()) {
        ws_agg.add(w.cls(),
                   runner.run(w, NamedScheme::WS).weighted_speedup);
        ucp_agg.add(
            w.cls(),
            runner.run(w, NamedScheme::WS_UCP).weighted_speedup);
    }

    printHeader("Figure 5(a): Weighted Speedup, WS vs "
                "WS-L1DPartition (UCP)");
    std::printf("%-8s %8s %16s\n", "class", "WS", "WS-L1DPart");
    for (WorkloadClass cls :
         {WorkloadClass::CC, WorkloadClass::CM, WorkloadClass::MM}) {
        std::printf("%-8s %8.3f %16.3f\n", classLabel(cls),
                    ws_agg.geomean(cls), ucp_agg.geomean(cls));
    }
    std::printf("%-8s %8.3f %16.3f\n", "ALL", ws_agg.geomeanAll(),
                ucp_agg.geomeanAll());

    // Case-study pairs with per-kernel detail.
    printHeader("Figure 5(b,c): case pairs, per-kernel miss and "
                "rsfail rates");
    std::printf("%-8s %-16s %10s %12s %12s %14s %14s\n", "pair",
                "scheme", "WS", "miss_k0", "miss_k1", "rsfail_k0",
                "rsfail_k1");
    for (const auto &names : kCasePairs) {
        const Workload w = makeWorkload(names);
        for (NamedScheme s :
             {NamedScheme::WS, NamedScheme::WS_UCP}) {
            const ConcurrentResult r = runner.run(w, s);
            std::printf(
                "%-8s %-16s %10.3f %12.3f %12.3f %14.3f %14.3f\n",
                w.name().c_str(), schemeName(s).c_str(),
                r.weighted_speedup, r.stats[0].l1dMissRate(),
                r.stats[1].l1dMissRate(), r.stats[0].l1dRsFailRate(),
                r.stats[1].l1dRsFailRate());
        }
    }
    std::printf("\npaper: UCP fails to improve WS on average — a "
                "lower miss rate for one kernel comes with higher "
                "rsfail for the other (shared miss resources)\n");

    state.counters["ws_all"] = ws_agg.geomeanAll();
    state.counters["ucp_all"] = ucp_agg.geomeanAll();
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment(
            "figure5/cache_partitioning", runFigure5);
    });
}
