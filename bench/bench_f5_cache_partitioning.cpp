/**
 * @file
 * Reproduces Figure 5: the ineffectiveness of CPU-style L1D cache
 * partitioning (UCP) for intra-SM sharing — (a) Weighted Speedup by
 * class and for the six case-study pairs, (b) per-kernel L1D miss
 * rates and (c) per-kernel rsfail rates under WS vs WS-L1DPartition.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

const std::vector<std::vector<std::string>> kCasePairs = {
    {"pf", "bp"}, {"bp", "hs"}, // C+C
    {"bp", "sv"}, {"bp", "ks"}, // C+M
    {"sv", "ks"}, {"sv", "ax"}, // M+M
};

const NamedScheme kSchemes[] = {NamedScheme::WS, NamedScheme::WS_UCP};

void
runFigure5(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();

    const std::vector<Workload> pairs = benchPairs();
    std::vector<SimJob> jobs;
    for (const Workload &w : pairs)
        for (NamedScheme s : kSchemes)
            jobs.push_back(SimJob::concurrent(cfg, cycles, w, s));
    const std::vector<SimResult> results = engine.sweep(jobs);

    // (a) class geomeans.
    ClassAggregate ws_agg, ucp_agg;
    std::size_t idx = 0;
    for (const Workload &w : pairs) {
        ws_agg.add(w.cls(),
                   results[idx++].concurrent->weighted_speedup);
        ucp_agg.add(w.cls(),
                    results[idx++].concurrent->weighted_speedup);
    }

    printHeader("Figure 5(a): Weighted Speedup, WS vs "
                "WS-L1DPartition (UCP)");
    std::printf("%-8s %8s %16s\n", "class", "WS", "WS-L1DPart");
    for (WorkloadClass cls :
         {WorkloadClass::CC, WorkloadClass::CM, WorkloadClass::MM}) {
        std::printf("%-8s %8.3f %16.3f\n", classLabel(cls),
                    ws_agg.geomean(cls), ucp_agg.geomean(cls));
    }
    std::printf("%-8s %8.3f %16.3f\n", "ALL", ws_agg.geomeanAll(),
                ucp_agg.geomeanAll());

    // Case-study pairs with per-kernel detail. These are part of
    // benchPairs(), so every lookup is a memo hit.
    printHeader("Figure 5(b,c): case pairs, per-kernel miss and "
                "rsfail rates");
    std::printf("%-8s %-16s %10s %12s %12s %14s %14s\n", "pair",
                "scheme", "WS", "miss_k0", "miss_k1", "rsfail_k0",
                "rsfail_k1");
    for (const auto &names : kCasePairs) {
        const Workload w = makeWorkload(names);
        for (NamedScheme s : kSchemes) {
            const ConcurrentResult &r =
                *engine.concurrent(cfg, cycles, w, s);
            std::printf(
                "%-8s %-16s %10.3f %12.3f %12.3f %14.3f %14.3f\n",
                w.name().c_str(), schemeName(s).c_str(),
                r.weighted_speedup, r.stats[0].l1dMissRate(),
                r.stats[1].l1dMissRate(), r.stats[0].l1dRsFailRate(),
                r.stats[1].l1dRsFailRate());
        }
    }
    std::printf("\npaper: UCP fails to improve WS on average — a "
                "lower miss rate for one kernel comes with higher "
                "rsfail for the other (shared miss resources)\n");

    report.counters["ws_all"] = ws_agg.geomeanAll();
    report.counters["ucp_all"] = ucp_agg.geomeanAll();
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment(
            "figure5/cache_partitioning", runFigure5);
    });
}
