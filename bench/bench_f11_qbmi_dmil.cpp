/**
 * @file
 * Reproduces Figure 11: QBMI vs DMIL vs their combination on top of
 * Warped-Slicer — (a) Weighted Speedup (class geomeans + the six case
 * pairs), (b) per-kernel L1D miss rates, (c) per-kernel rsfail rates.
 * The paper's signature: the schemes tie on C+C; DMIL wins on C+M and
 * M+M via lower miss and rsfail rates; QBMI+DMIL adds little over
 * DMIL alone.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

const std::vector<std::vector<std::string>> kCasePairs = {
    {"pf", "bp"}, {"bp", "hs"}, // C+C
    {"bp", "sv"}, {"bp", "ks"}, // C+M
    {"sv", "ks"}, {"sv", "ax"}, // M+M
};

const NamedScheme kSchemes[] = {NamedScheme::WS_QBMI,
                                NamedScheme::WS_DMIL,
                                NamedScheme::WS_QBMI_DMIL};

void
runFigure11(benchmark::State &state)
{
    Runner runner(benchConfig(), benchCycles());

    printHeader("Figure 11(a): Weighted Speedup (class geomeans)");
    std::printf("%-8s", "class");
    for (NamedScheme s : kSchemes)
        std::printf(" %14s", schemeName(s).c_str());
    std::printf("\n");

    std::map<NamedScheme, ClassAggregate> agg;
    for (const Workload &w : benchPairs())
        for (NamedScheme s : kSchemes)
            agg[s].add(w.cls(),
                       runner.run(w, s).weighted_speedup);
    for (WorkloadClass cls :
         {WorkloadClass::CC, WorkloadClass::CM, WorkloadClass::MM}) {
        std::printf("%-8s", classLabel(cls));
        for (NamedScheme s : kSchemes)
            std::printf(" %14.3f", agg[s].geomean(cls));
        std::printf("\n");
    }
    std::printf("%-8s", "ALL");
    for (NamedScheme s : kSchemes)
        std::printf(" %14.3f", agg[s].geomeanAll());
    std::printf("\n");

    printHeader("Figure 11(a-c): six case pairs, per-kernel detail");
    std::printf("%-8s %-14s %8s %9s %9s %11s %11s\n", "pair",
                "scheme", "WS", "miss_k0", "miss_k1", "rsfail_k0",
                "rsfail_k1");
    for (const auto &names : kCasePairs) {
        const Workload w = makeWorkload(names);
        for (NamedScheme s : kSchemes) {
            const ConcurrentResult r = runner.run(w, s);
            std::printf(
                "%-8s %-14s %8.3f %9.3f %9.3f %11.3f %11.3f\n",
                w.name().c_str(), schemeName(s).c_str(),
                r.weighted_speedup, r.stats[0].l1dMissRate(),
                r.stats[1].l1dMissRate(), r.stats[0].l1dRsFailRate(),
                r.stats[1].l1dRsFailRate());
        }
    }
    std::printf("\npaper: WS-DMIL cuts the memory kernel's miss rate "
                "(e.g. ks 0.88 -> 0.52) and rsfail rate, beating "
                "WS-QBMI on C+M and M+M; the combination is only "
                "marginally different from DMIL\n");

    state.counters["qbmi_all"] =
        agg[NamedScheme::WS_QBMI].geomeanAll();
    state.counters["dmil_all"] =
        agg[NamedScheme::WS_DMIL].geomeanAll();
    state.counters["combo_all"] =
        agg[NamedScheme::WS_QBMI_DMIL].geomeanAll();
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure11/qbmi_dmil",
                                              runFigure11);
    });
}
