/**
 * @file
 * Reproduces Figure 11: QBMI vs DMIL vs their combination on top of
 * Warped-Slicer — (a) Weighted Speedup (class geomeans + the six case
 * pairs), (b) per-kernel L1D miss rates, (c) per-kernel rsfail rates.
 * The paper's signature: the schemes tie on C+C; DMIL wins on C+M and
 * M+M via lower miss and rsfail rates; QBMI+DMIL adds little over
 * DMIL alone.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

const std::vector<std::vector<std::string>> kCasePairs = {
    {"pf", "bp"}, {"bp", "hs"}, // C+C
    {"bp", "sv"}, {"bp", "ks"}, // C+M
    {"sv", "ks"}, {"sv", "ax"}, // M+M
};

const NamedScheme kSchemes[] = {NamedScheme::WS_QBMI,
                                NamedScheme::WS_DMIL,
                                NamedScheme::WS_QBMI_DMIL};

void
runFigure11(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();

    std::vector<std::string> scheme_names;
    for (NamedScheme s : kSchemes)
        scheme_names.push_back(schemeName(s));

    // One sweep over all (pair, scheme) jobs; isolated baselines are
    // memoized and shared across the three schemes of each pair.
    const std::vector<Workload> pairs = benchPairs();
    std::vector<SimJob> jobs;
    for (const Workload &w : pairs)
        for (NamedScheme s : kSchemes)
            jobs.push_back(SimJob::concurrent(cfg, cycles, w, s));
    const std::vector<SimResult> results = engine.sweep(jobs);

    ClassTable table(
        "Figure 11(a): Weighted Speedup (class geomeans)",
        scheme_names, 14);
    std::size_t idx = 0;
    for (const Workload &w : pairs)
        for (std::size_t s = 0; s < std::size(kSchemes); ++s)
            table.add(w.cls(), s,
                      results[idx++].concurrent->weighted_speedup);
    table.print();

    printHeader("Figure 11(a-c): six case pairs, per-kernel detail");
    std::printf("%-8s %-14s %8s %9s %9s %11s %11s\n", "pair",
                "scheme", "WS", "miss_k0", "miss_k1", "rsfail_k0",
                "rsfail_k1");
    for (const auto &names : kCasePairs) {
        const Workload w = makeWorkload(names);
        for (NamedScheme s : kSchemes) {
            // Case pairs are part of benchPairs(): memo hits, no
            // extra simulations.
            const ConcurrentResult &r =
                *engine.concurrent(cfg, cycles, w, s);
            std::printf(
                "%-8s %-14s %8.3f %9.3f %9.3f %11.3f %11.3f\n",
                w.name().c_str(), schemeName(s).c_str(),
                r.weighted_speedup, r.stats[0].l1dMissRate(),
                r.stats[1].l1dMissRate(), r.stats[0].l1dRsFailRate(),
                r.stats[1].l1dRsFailRate());
        }
    }
    std::printf("\npaper: WS-DMIL cuts the memory kernel's miss rate "
                "(e.g. ks 0.88 -> 0.52) and rsfail rate, beating "
                "WS-QBMI on C+M and M+M; the combination is only "
                "marginally different from DMIL\n");

    report.counters["qbmi_all"] = table.geomeanAll(0);
    report.counters["dmil_all"] = table.geomeanAll(1);
    report.counters["combo_all"] = table.geomeanAll(2);
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure11/qbmi_dmil",
                                              runFigure11);
    });
}
