/**
 * @file
 * Reproduces the Section 4.3 sensitivity studies: QBMI/DMIL gains
 * over WS with (a) larger L1 D-caches (24KB baseline vs 48KB and
 * 96KB) and (b) the LRR warp scheduler instead of GTO.
 *
 * Paper headline: on 48KB (96KB) L1D, WS-QBMI gains 2.1% (1.5%) and
 * WS-DMIL 18.5% (3.5%) — gains shrink as capacity removes the
 * contention; under LRR, QBMI +3.2% and DMIL +25.8% — the schemes do
 * not depend on GTO.
 */

#include "bench_util.hpp"

#include <map>

namespace {

using namespace ckesim;

const NamedScheme kSchemes[] = {NamedScheme::WS, NamedScheme::WS_QBMI,
                                NamedScheme::WS_DMIL};

void
printConfigRow(const std::string &label, const Workload *pairs,
               std::size_t num_pairs, const SimResult *results,
               BenchReport &report)
{
    std::map<NamedScheme, ClassAggregate> ws, antt_v;
    std::size_t idx = 0;
    for (std::size_t p = 0; p < num_pairs; ++p) {
        for (NamedScheme s : kSchemes) {
            const ConcurrentResult &r = *results[idx++].concurrent;
            ws[s].add(pairs[p].cls(), r.weighted_speedup);
            antt_v[s].add(pairs[p].cls(), r.antt_value);
        }
    }
    const double base = ws[NamedScheme::WS].geomeanAll();
    const double qbmi = ws[NamedScheme::WS_QBMI].geomeanAll();
    const double dmil = ws[NamedScheme::WS_DMIL].geomeanAll();
    const double base_antt = antt_v[NamedScheme::WS].geomeanAll();
    std::printf("%-14s %8.3f %8.3f (%+5.1f%%) %8.3f (%+5.1f%%)   "
                "ANTT: %+5.1f%% / %+5.1f%%\n",
                label.c_str(), base, qbmi,
                100.0 * (qbmi / base - 1.0), dmil,
                100.0 * (dmil / base - 1.0),
                100.0 * (1.0 - antt_v[NamedScheme::WS_QBMI]
                                   .geomeanAll() /
                                   base_antt),
                100.0 * (1.0 - antt_v[NamedScheme::WS_DMIL]
                                   .geomeanAll() /
                                   base_antt));
    report.counters[label + "_ws_gain_dmil"] = dmil / base - 1.0;
}

void
runSensitivity(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const Cycle cycles = benchCycles();

    std::vector<std::pair<std::string, GpuConfig>> configs;
    configs.emplace_back("L1D-24KB", benchConfig());
    {
        GpuConfig cfg = benchConfig();
        cfg.l1d.size_bytes = 48 * 1024;
        configs.emplace_back("L1D-48KB", cfg);
    }
    {
        GpuConfig cfg = benchConfig();
        cfg.l1d.size_bytes = 96 * 1024;
        configs.emplace_back("L1D-96KB", cfg);
    }
    {
        GpuConfig cfg = benchConfig();
        cfg.sm.sched_policy = SchedPolicy::LRR;
        configs.emplace_back("LRR-sched", cfg);
    }

    // All four configurations fan out as one sweep; isolated
    // baselines are memoized per configuration.
    const std::vector<Workload> pairs = benchPairs();
    std::vector<SimJob> jobs;
    for (const auto &[label, cfg] : configs)
        for (const Workload &w : pairs)
            for (NamedScheme s : kSchemes)
                jobs.push_back(SimJob::concurrent(cfg, cycles, w, s));
    const std::vector<SimResult> results = engine.sweep(jobs);

    printHeader("Section 4.3: sensitivity — Weighted Speedup "
                "geomeans (WS / WS-QBMI / WS-DMIL)");
    std::printf("%-14s %8s %8s %10s %8s %10s\n", "config", "WS",
                "QBMI", "gain", "DMIL", "gain");
    const std::size_t per_config =
        pairs.size() * std::size(kSchemes);
    for (std::size_t c = 0; c < configs.size(); ++c)
        printConfigRow(configs[c].first, pairs.data(), pairs.size(),
                       results.data() + c * per_config, report);

    std::printf("\npaper: gains persist but shrink with larger L1D "
                "(DMIL +24.6%% at 24KB -> +18.5%% at 48KB -> +3.5%% "
                "at 96KB); under LRR, QBMI +3.2%% / DMIL +25.8%%\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("s43/sensitivity",
                                              runSensitivity);
    });
}
