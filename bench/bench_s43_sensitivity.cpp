/**
 * @file
 * Reproduces the Section 4.3 sensitivity studies: QBMI/DMIL gains
 * over WS with (a) larger L1 D-caches (24KB baseline vs 48KB and
 * 96KB) and (b) the LRR warp scheduler instead of GTO.
 *
 * Paper headline: on 48KB (96KB) L1D, WS-QBMI gains 2.1% (1.5%) and
 * WS-DMIL 18.5% (3.5%) — gains shrink as capacity removes the
 * contention; under LRR, QBMI +3.2% and DMIL +25.8% — the schemes do
 * not depend on GTO.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

const NamedScheme kSchemes[] = {NamedScheme::WS, NamedScheme::WS_QBMI,
                                NamedScheme::WS_DMIL};

void
evalConfig(const std::string &label, const GpuConfig &cfg,
           benchmark::State &state)
{
    Runner runner(cfg, benchCycles());
    std::map<NamedScheme, ClassAggregate> ws, antt_v;
    for (const Workload &w : benchPairs()) {
        for (NamedScheme s : kSchemes) {
            const ConcurrentResult r = runner.run(w, s);
            ws[s].add(w.cls(), r.weighted_speedup);
            antt_v[s].add(w.cls(), r.antt_value);
        }
    }
    const double base = ws[NamedScheme::WS].geomeanAll();
    const double qbmi = ws[NamedScheme::WS_QBMI].geomeanAll();
    const double dmil = ws[NamedScheme::WS_DMIL].geomeanAll();
    const double base_antt =
        antt_v[NamedScheme::WS].geomeanAll();
    std::printf("%-14s %8.3f %8.3f (%+5.1f%%) %8.3f (%+5.1f%%)   "
                "ANTT: %+5.1f%% / %+5.1f%%\n",
                label.c_str(), base, qbmi,
                100.0 * (qbmi / base - 1.0), dmil,
                100.0 * (dmil / base - 1.0),
                100.0 * (1.0 - antt_v[NamedScheme::WS_QBMI]
                                   .geomeanAll() /
                                   base_antt),
                100.0 * (1.0 - antt_v[NamedScheme::WS_DMIL]
                                   .geomeanAll() /
                                   base_antt));
    state.counters[label + "_ws_gain_dmil"] = dmil / base - 1.0;
}

void
runSensitivity(benchmark::State &state)
{
    printHeader("Section 4.3: sensitivity — Weighted Speedup "
                "geomeans (WS / WS-QBMI / WS-DMIL)");
    std::printf("%-14s %8s %8s %10s %8s %10s\n", "config", "WS",
                "QBMI", "gain", "DMIL", "gain");

    {
        GpuConfig cfg = benchConfig();
        evalConfig("L1D-24KB", cfg, state);
    }
    {
        GpuConfig cfg = benchConfig();
        cfg.l1d.size_bytes = 48 * 1024;
        evalConfig("L1D-48KB", cfg, state);
    }
    {
        GpuConfig cfg = benchConfig();
        cfg.l1d.size_bytes = 96 * 1024;
        evalConfig("L1D-96KB", cfg, state);
    }
    {
        GpuConfig cfg = benchConfig();
        cfg.sm.sched_policy = SchedPolicy::LRR;
        evalConfig("LRR-sched", cfg, state);
    }
    std::printf("\npaper: gains persist but shrink with larger L1D "
                "(DMIL +24.6%% at 24KB -> +18.5%% at 48KB -> +3.5%% "
                "at 96KB); under LRR, QBMI +3.2%% / DMIL +25.8%%\n");
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("s43/sensitivity",
                                              runSensitivity);
    });
}
