/**
 * @file
 * Execution-layer throughput baselines, emitted as BENCH_perf.json
 * (stable key order) so successive PRs can diff orchestration
 * overhead and simulator speed.
 *
 * Three sections:
 *
 *  - campaign_throughput: jobs/sec of the smoke campaign run (a)
 *    in-process through a SweepEngine and (b) through the
 *    multi-process campaign orchestrator at 1, 2 and 4 workers —
 *    measured at THREE scale points. At the small point (2000 cycles
 *    per job) fork+handshake overhead dominates and the fleet loses
 *    to in-process; at the large point (20000 cycles) per-job work
 *    amortizes dispatch; the wide point replays the smoke campaign
 *    six times at staggered cycle counts (48 jobs, defeating the
 *    content-hash dedup) so jobs >> workers and per-job dispatch
 *    overhead is measured in steady state rather than ramp-up.
 *    Recording all three keeps the overhead floor AND the scaling
 *    behaviour under regression watch. NOTE: worker scaling needs
 *    cores to scale onto — on the 1-core CI host every multi-worker
 *    row is an overhead measurement, not a speedup measurement
 *    (host_cores is recorded so readers can tell which).
 *
 *  - sim_speed: simulated cycles per wall second of a single Gpu,
 *    strict stepping vs the event-driven fast path (--fast /
 *    Gpu::setFastForward), per scheme x workload pair. Every case
 *    asserts the two runs end bit-identical (snapshot fingerprints)
 *    before reporting a speedup — a fast number from a divergent run
 *    would be meaningless.
 *
 *  - strict_busy: the perf-regression gate for the strict stepping
 *    loop itself. A busy machine (sms=4, compute-bound bp+hs co-run)
 *    leaves the fast path nothing to skip, so cycles/sec here is a
 *    direct measure of per-cycle cost. Each scheme runs --busy-repeats
 *    times and reports the median (single runs on a shared host are
 *    ±20-40% noisy). With --prev FILE the previous artifact's numbers
 *    are embedded alongside as prev_cycles_per_sec / improvement;
 *    with --prof the first run of each scheme attaches the cycle-cost
 *    profiler (sim/profiler.hpp) and reports the component breakdown.
 *
 * Usage: bench_perf [--out BENCH_perf.json] [--cycles N]
 *                   [--cycles-large N] [--sim-cycles N]
 *                   [--busy-cycles N] [--busy-repeats R]
 *                   [--prev FILE] [--prof]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec.hpp"
#include "gpu.hpp"
#include "kernels/workload.hpp"
#include "metrics/sweep_engine.hpp"
#include "sim/check.hpp"
#include "sim/profiler.hpp"

namespace {

using namespace ckesim;
using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

// ---- campaign throughput ----------------------------------------------

struct ModeResult
{
    std::string mode;
    int workers = 1;
    double wall_ms = 0.0;
    double jobs_per_sec = 0.0;
    bool all_completed = false;
};

ModeResult
runInProcess(const std::vector<SimJob> &jobs)
{
    ModeResult r;
    r.mode = "in-process";
    r.workers = 1;
    SweepEngine engine(1); // fresh engine: empty memo cache
    const auto start = Clock::now();
    const std::vector<SimResult> results = engine.sweep(jobs);
    r.wall_ms = msSince(start);
    r.all_completed = results.size() == jobs.size();
    r.jobs_per_sec = static_cast<double>(jobs.size()) * 1000.0 /
                     (r.wall_ms > 0.0 ? r.wall_ms : 1.0);
    return r;
}

ModeResult
runCampaign(const std::vector<SimJob> &jobs, int workers)
{
    ModeResult r;
    r.mode = "campaign";
    r.workers = workers;
    CampaignOptions opts;
    opts.workers = workers;
    CampaignEngine engine(opts);
    const auto start = Clock::now();
    const CampaignOutcome outcome = engine.run(jobs);
    r.wall_ms = msSince(start);
    r.all_completed = outcome.allCompleted();
    r.jobs_per_sec = static_cast<double>(jobs.size()) * 1000.0 /
                     (r.wall_ms > 0.0 ? r.wall_ms : 1.0);
    return r;
}

struct ScalePoint
{
    std::string point;
    long long cycles = 0;
    std::size_t jobs = 0;
    std::vector<ModeResult> modes;
};

ScalePoint
measureJobs(const std::string &point, long long cycles,
            const std::vector<SimJob> &jobs)
{
    ScalePoint sp;
    sp.point = point;
    sp.cycles = cycles;
    sp.jobs = jobs.size();
    sp.modes.push_back(runInProcess(jobs));
    for (const int workers : {1, 2, 4})
        sp.modes.push_back(runCampaign(jobs, workers));
    return sp;
}

ScalePoint
measurePoint(const std::string &point, long long cycles)
{
    return measureJobs(point, cycles,
                       buildNamedCampaign(
                           "smoke",
                           Cycle{static_cast<std::uint64_t>(cycles)}));
}

/** jobs >> workers: six smoke replicas at staggered cycle counts so
 *  the campaign's content-hash memoization cannot collapse them. */
ScalePoint
measureWidePoint(long long cycles)
{
    std::vector<SimJob> jobs;
    for (int i = 0; i < 6; ++i) {
        const std::vector<SimJob> rep = buildNamedCampaign(
            "smoke", Cycle{static_cast<std::uint64_t>(cycles + i)});
        jobs.insert(jobs.end(), rep.begin(), rep.end());
    }
    return measureJobs("wide", cycles, jobs);
}

// ---- scheme list shared by sim_speed and strict_busy ------------------

struct SchemeCase
{
    std::string name;
    SchemeSpec spec;
};

std::vector<SchemeCase>
benchSchemes()
{
    std::vector<SchemeCase> schemes;
    schemes.push_back({"smk", makeScheme(PartitionScheme::SmkDrf,
                                         BmiMode::None,
                                         MilMode::None)});
    {
        SchemeCase s{"ws", makeScheme(PartitionScheme::WarpedSlicer,
                                      BmiMode::None, MilMode::None)};
        s.spec.ws_profile_window = Cycle{5000};
        schemes.push_back(s);
    }
    {
        SchemeCase s{"ws-qbmi-dmil",
                     makeScheme(PartitionScheme::WarpedSlicer,
                                BmiMode::QBMI, MilMode::Dynamic)};
        s.spec.ws_profile_window = Cycle{5000};
        schemes.push_back(s);
    }
    {
        // Tight static SMIL: with one outstanding miss per kernel
        // the SMs spend most cycles waiting on DRAM horizons — the
        // fast path's best case on a memory-bound pair.
        SchemeCase s{"ws-smil1",
                     makeScheme(PartitionScheme::WarpedSlicer,
                                BmiMode::None, MilMode::Static)};
        s.spec.ws_profile_window = Cycle{5000};
        s.spec.smil_limits[0] = 1;
        s.spec.smil_limits[1] = 1;
        schemes.push_back(s);
    }
    return schemes;
}

// ---- simulator speed (strict vs fast path) ----------------------------

struct SimSpeedCase
{
    int sms = 0;
    std::string workload;
    std::string scheme;
    double strict_ms = 0.0;
    double fast_ms = 0.0;
    double strict_cps = 0.0; ///< simulated cycles per wall second
    double fast_cps = 0.0;
    double speedup = 0.0;
    double skip_pct = 0.0; ///< % of cycles the fast path warped over
    bool bit_identical = false;
};

std::uint64_t
timedRun(const GpuConfig &cfg, const Workload &wl,
         const SchemeSpec &spec, Cycle cycles, bool fast,
         double &wall_ms, std::uint64_t &skipped)
{
    Gpu gpu(cfg, wl, spec);
    gpu.setFastForward(fast);
    const auto start = Clock::now();
    gpu.run(cycles);
    wall_ms = msSince(start);
    skipped = gpu.fastSkippedCycles();
    return gpu.snapshot().fingerprint;
}

SimSpeedCase
measureSimSpeed(const GpuConfig &cfg, const std::string &wl_name,
                const Workload &wl, const std::string &scheme_name,
                const SchemeSpec &spec, Cycle cycles)
{
    SimSpeedCase c;
    c.sms = cfg.num_sms;
    c.workload = wl_name;
    c.scheme = scheme_name;
    std::uint64_t skipped = 0;
    const std::uint64_t fp_strict = timedRun(
        cfg, wl, spec, cycles, false, c.strict_ms, skipped);
    const std::uint64_t fp_fast =
        timedRun(cfg, wl, spec, cycles, true, c.fast_ms, skipped);
    c.bit_identical = fp_strict == fp_fast;
    const double cyc = static_cast<double>(cycles.get());
    c.skip_pct = 100.0 * static_cast<double>(skipped) / cyc;
    c.strict_cps =
        cyc * 1000.0 / (c.strict_ms > 0.0 ? c.strict_ms : 1.0);
    c.fast_cps = cyc * 1000.0 / (c.fast_ms > 0.0 ? c.fast_ms : 1.0);
    c.speedup = c.fast_cps / (c.strict_cps > 0.0 ? c.strict_cps : 1.0);
    return c;
}

std::vector<SimSpeedCase>
runSimSpeed(Cycle cycles)
{
    struct WorkloadCase
    {
        std::string name;
        Workload wl;
    };
    const std::vector<WorkloadCase> workloads = {
        {"sv+ks", makeWorkload({"sv", "ks"})}, // memory-bound
        {"bp+hs", makeWorkload({"bp", "hs"})}, // compute-bound
    };
    const std::vector<SchemeCase> schemes = benchSchemes();

    // Two machine scales. On 1 SM the skip condition ("every
    // component's horizon in the future") is the SM's own idleness
    // and memory-bound cases skip most of their cycles; on 4 SMs the
    // global-idle intersection across independently phased SMs is
    // far smaller, so this row tracks how much the conservative
    // whole-machine skip leaves on the table.
    std::vector<SimSpeedCase> cases;
    for (const int sms : {1, 4}) {
        const GpuConfig cfg = makeSmallConfig(sms, sms == 1 ? 2 : 4);
        for (const WorkloadCase &w : workloads)
            for (const SchemeCase &s : schemes)
                cases.push_back(measureSimSpeed(
                    cfg, w.name, w.wl, s.name, s.spec, cycles));
    }
    return cases;
}

// ---- strict busy-machine microbench (perf-regression gate) ------------

struct BusyCase
{
    std::string scheme;
    double wall_ms = 0.0;       ///< median over repeats
    double cps = 0.0;           ///< median strict cycles/sec
    double prev_cps = 0.0;      ///< from --prev (0 = unavailable)
    double improvement = 0.0;   ///< cps / prev_cps (0 = unavailable)
    double attributed_pct = 0.0; ///< --prof only (0 = not profiled)
};

std::vector<BusyCase>
runStrictBusy(Cycle cycles, int repeats, bool prof_on)
{
    const GpuConfig cfg = makeSmallConfig(4, 4);
    const Workload wl = makeWorkload({"bp", "hs"});
    std::vector<BusyCase> out;
    for (const SchemeCase &s : benchSchemes()) {
        BusyCase c;
        c.scheme = s.name;
        if (prof_on) {
            // Separate profiled run: scope overhead must not leak
            // into the timed medians below.
            Gpu gpu(cfg, wl, s.spec);
            Profiler prof;
            prof.enable();
            gpu.setProfiler(&prof);
            gpu.run(cycles);
            c.attributed_pct = prof.attributedFraction() * 100.0;
            std::fprintf(stderr, "strict_busy %s\n", s.name.c_str());
            std::ostringstream os;
            prof.report(os);
            std::fputs(os.str().c_str(), stderr);
        }
        std::vector<double> walls;
        for (int r = 0; r < repeats; ++r) {
            Gpu gpu(cfg, wl, s.spec);
            const auto start = Clock::now();
            gpu.run(cycles);
            walls.push_back(msSince(start));
        }
        std::sort(walls.begin(), walls.end());
        c.wall_ms = walls[walls.size() / 2];
        c.cps = static_cast<double>(cycles.get()) * 1000.0 /
                (c.wall_ms > 0.0 ? c.wall_ms : 1.0);
        out.push_back(c);
    }
    return out;
}

/**
 * Pull the previous artifact's strict-busy cycles/sec per scheme.
 * Prefers a strict_busy section; falls back to the sim_speed
 * sms=4/bp+hs strict rows for artifacts written before the section
 * existed. Hand-rolled scan — both formats are emitted by this very
 * program, so the key order is known.
 */
std::map<std::string, double>
loadPrevBusy(const std::string &path)
{
    std::map<std::string, double> prev;
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bench_perf: cannot read --prev '%s'\n",
                     path.c_str());
        return prev;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    const auto scanFrom = [&text, &prev](std::size_t pos,
                                         const char *value_key) {
        const std::string skey = "\"scheme\": \"";
        const std::string vkey =
            std::string("\"") + value_key + "\": ";
        while (true) {
            pos = text.find(skey, pos);
            if (pos == std::string::npos)
                return;
            pos += skey.size();
            const std::size_t end = text.find('"', pos);
            if (end == std::string::npos)
                return;
            const std::string name = text.substr(pos, end - pos);
            const std::size_t vp = text.find(vkey, end);
            if (vp == std::string::npos)
                return;
            prev[name] = std::strtod(
                text.c_str() + vp + vkey.size(), nullptr);
            pos = vp;
        }
    };

    const std::size_t sb = text.find("\"strict_busy\"");
    if (sb != std::string::npos) {
        scanFrom(sb, "cycles_per_sec");
        if (!prev.empty())
            return prev;
    }
    // Legacy fallback: the sim_speed strict rows at sms=4 / bp+hs
    // (artifacts written before the strict_busy section existed).
    // Row-by-row so the interleaved sv+ks rows are not swallowed.
    const std::string row = "\"sms\": 4, \"workload\": \"bp+hs\", ";
    std::size_t pos = 0;
    while ((pos = text.find(row, pos)) != std::string::npos) {
        const std::string skey = "\"scheme\": \"";
        std::size_t sp = text.find(skey, pos);
        if (sp == std::string::npos)
            break;
        sp += skey.size();
        const std::size_t end = text.find('"', sp);
        const std::string name = text.substr(sp, end - sp);
        const std::string vkey = "\"strict_cycles_per_sec\": ";
        const std::size_t vp = text.find(vkey, end);
        if (vp == std::string::npos)
            break;
        prev[name] =
            std::strtod(text.c_str() + vp + vkey.size(), nullptr);
        pos = vp;
    }
    return prev;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_perf.json";
    std::string prev_path;
    bool prof_on = false;
    long long cycles = 2000;
    long long cycles_large = 20000;
    long long sim_cycles = 60000;
    long long busy_cycles = 40000;
    long long busy_repeats = 3;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        long long *slot = nullptr;
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            continue;
        } else if (arg == "--prev" && i + 1 < argc) {
            prev_path = argv[++i];
            continue;
        } else if (arg == "--prof") {
            prof_on = true;
            continue;
        } else if (arg == "--cycles" && i + 1 < argc) {
            slot = &cycles;
        } else if (arg == "--cycles-large" && i + 1 < argc) {
            slot = &cycles_large;
        } else if (arg == "--sim-cycles" && i + 1 < argc) {
            slot = &sim_cycles;
        } else if (arg == "--busy-cycles" && i + 1 < argc) {
            slot = &busy_cycles;
        } else if (arg == "--busy-repeats" && i + 1 < argc) {
            slot = &busy_repeats;
        } else {
            std::fprintf(stderr,
                         "usage: bench_perf [--out FILE] "
                         "[--cycles N] [--cycles-large N] "
                         "[--sim-cycles N] [--busy-cycles N] "
                         "[--busy-repeats R] [--prev FILE] "
                         "[--prof]\n");
            return 2;
        }
        *slot = std::strtoll(argv[++i], nullptr, 10);
        if (*slot <= 0) {
            std::fprintf(stderr, "bad %s\n", arg.c_str());
            return 2;
        }
    }

    try {
        std::vector<ScalePoint> points;
        points.push_back(measurePoint("small", cycles));
        points.push_back(measurePoint("large", cycles_large));
        points.push_back(measureWidePoint(cycles_large));

        const std::vector<SimSpeedCase> speed =
            runSimSpeed(Cycle{static_cast<std::uint64_t>(sim_cycles)});

        std::vector<BusyCase> busy = runStrictBusy(
            Cycle{static_cast<std::uint64_t>(busy_cycles)},
            static_cast<int>(busy_repeats), prof_on);
        if (!prev_path.empty()) {
            const std::map<std::string, double> prev =
                loadPrevBusy(prev_path);
            for (BusyCase &c : busy) {
                const auto it = prev.find(c.scheme);
                if (it == prev.end() || it->second <= 0.0)
                    continue;
                c.prev_cps = it->second;
                c.improvement = c.cps / c.prev_cps;
            }
        }

        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         out_path.c_str());
            return 2;
        }
        // Worker scaling only shows up with cores to scale onto;
        // record the host so a 1-core CI runner's numbers are read
        // as overhead measurements, not scaling regressions.
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"perf\",\n"
                     "  \"host_cores\": %u,\n"
                     "  \"campaign_throughput\": {\n"
                     "    \"campaign\": \"smoke\",\n"
                     "    \"points\": [\n",
                     std::thread::hardware_concurrency());
        for (std::size_t p = 0; p < points.size(); ++p) {
            const ScalePoint &sp = points[p];
            std::fprintf(f,
                         "      {\"point\": \"%s\", \"cycles\": "
                         "%lld, \"jobs\": %zu, \"modes\": [\n",
                         sp.point.c_str(), sp.cycles, sp.jobs);
            for (std::size_t i = 0; i < sp.modes.size(); ++i) {
                const ModeResult &m = sp.modes[i];
                std::fprintf(
                    f,
                    "        {\"mode\": \"%s\", \"workers\": %d, "
                    "\"wall_ms\": %.3f, \"jobs_per_sec\": %.3f, "
                    "\"all_completed\": %s}%s\n",
                    m.mode.c_str(), m.workers, m.wall_ms,
                    m.jobs_per_sec,
                    m.all_completed ? "true" : "false",
                    i + 1 < sp.modes.size() ? "," : "");
            }
            std::fprintf(f, "      ]}%s\n",
                         p + 1 < points.size() ? "," : "");
        }
        std::fprintf(f,
                     "    ]\n"
                     "  },\n"
                     "  \"sim_speed\": {\n"
                     "    \"cycles\": %lld,\n"
                     "    \"cases\": [\n",
                     sim_cycles);
        for (std::size_t i = 0; i < speed.size(); ++i) {
            const SimSpeedCase &c = speed[i];
            std::fprintf(
                f,
                "      {\"sms\": %d, \"workload\": \"%s\", "
                "\"scheme\": \"%s\", "
                "\"strict_ms\": %.3f, \"fast_ms\": %.3f, "
                "\"strict_cycles_per_sec\": %.0f, "
                "\"fast_cycles_per_sec\": %.0f, "
                "\"speedup\": %.3f, \"skip_pct\": %.1f, "
                "\"bit_identical\": %s}%s\n",
                c.sms, c.workload.c_str(), c.scheme.c_str(),
                c.strict_ms, c.fast_ms, c.strict_cps, c.fast_cps,
                c.speedup, c.skip_pct,
                c.bit_identical ? "true" : "false",
                i + 1 < speed.size() ? "," : "");
        }
        std::fprintf(f,
                     "    ]\n"
                     "  },\n"
                     "  \"strict_busy\": {\n"
                     "    \"cycles\": %lld,\n"
                     "    \"sms\": 4,\n"
                     "    \"workload\": \"bp+hs\",\n"
                     "    \"repeats\": %lld,\n"
                     "    \"cases\": [\n",
                     busy_cycles, busy_repeats);
        for (std::size_t i = 0; i < busy.size(); ++i) {
            const BusyCase &c = busy[i];
            std::fprintf(f,
                         "      {\"scheme\": \"%s\", "
                         "\"wall_ms\": %.3f, "
                         "\"cycles_per_sec\": %.0f",
                         c.scheme.c_str(), c.wall_ms, c.cps);
            if (c.prev_cps > 0.0)
                std::fprintf(f,
                             ", \"prev_cycles_per_sec\": %.0f, "
                             "\"improvement\": %.3f",
                             c.prev_cps, c.improvement);
            if (c.attributed_pct > 0.0)
                std::fprintf(f, ", \"prof_attributed_pct\": %.1f",
                             c.attributed_pct);
            std::fprintf(f, "}%s\n",
                         i + 1 < busy.size() ? "," : "");
        }
        std::fprintf(f,
                     "    ]\n"
                     "  }\n"
                     "}\n");
        std::fclose(f);

        for (const ScalePoint &sp : points)
            for (const ModeResult &m : sp.modes)
                std::printf("%-6s %-10s workers=%d  %8.1f ms  "
                            "%7.2f jobs/sec%s\n",
                            sp.point.c_str(), m.mode.c_str(),
                            m.workers, m.wall_ms, m.jobs_per_sec,
                            m.all_completed ? "" : "  INCOMPLETE");
        for (const SimSpeedCase &c : speed)
            std::printf("sim sms=%d %-6s %-13s strict %8.0f cyc/s  "
                        "fast %8.0f cyc/s  %.2fx  skip %.1f%%%s\n",
                        c.sms, c.workload.c_str(), c.scheme.c_str(),
                        c.strict_cps, c.fast_cps, c.speedup,
                        c.skip_pct,
                        c.bit_identical ? "" : "  DIVERGED");
        for (const BusyCase &c : busy) {
            std::printf("busy sms=4 bp+hs %-13s strict %8.0f cyc/s",
                        c.scheme.c_str(), c.cps);
            if (c.prev_cps > 0.0)
                std::printf("  prev %8.0f  %.2fx", c.prev_cps,
                            c.improvement);
            if (c.attributed_pct > 0.0)
                std::printf("  prof %.1f%%", c.attributed_pct);
            std::printf("\n");
        }

        int rc = 0;
        for (const ScalePoint &sp : points)
            for (const ModeResult &m : sp.modes)
                if (!m.all_completed)
                    rc = 1;
        for (const SimSpeedCase &c : speed)
            if (!c.bit_identical)
                rc = 1;
        return rc;
    } catch (const SimError &e) {
        std::fprintf(stderr, "bench_perf: [%s] %s\n",
                     e.kind().c_str(), e.what());
        return 2;
    }
}
