/**
 * @file
 * First throughput baseline of the execution layers: jobs/sec of the
 * smoke campaign run (a) in-process through a SweepEngine and (b)
 * through the multi-process campaign orchestrator at 1, 2 and 4
 * workers. Emits BENCH_perf.json (stable key order) so successive
 * PRs can diff orchestration overhead and scaling.
 *
 * This measures the harness, not the simulator: every mode runs the
 * identical job list with fresh caches, so the delta between modes is
 * pure dispatch/IPC/journal overhead.
 *
 * Usage: bench_perf [--out BENCH_perf.json] [--cycles N]
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec.hpp"
#include "metrics/sweep_engine.hpp"
#include "sim/check.hpp"

namespace {

using namespace ckesim;
using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

struct ModeResult
{
    std::string mode;
    int workers = 1;
    double wall_ms = 0.0;
    double jobs_per_sec = 0.0;
    bool all_completed = false;
};

ModeResult
runInProcess(const std::vector<SimJob> &jobs)
{
    ModeResult r;
    r.mode = "in-process";
    r.workers = 1;
    SweepEngine engine(1); // fresh engine: empty memo cache
    const auto start = Clock::now();
    const std::vector<SimResult> results = engine.sweep(jobs);
    r.wall_ms = msSince(start);
    r.all_completed = results.size() == jobs.size();
    r.jobs_per_sec = static_cast<double>(jobs.size()) * 1000.0 /
                     (r.wall_ms > 0.0 ? r.wall_ms : 1.0);
    return r;
}

ModeResult
runCampaign(const std::vector<SimJob> &jobs, int workers)
{
    ModeResult r;
    r.mode = "campaign";
    r.workers = workers;
    CampaignOptions opts;
    opts.workers = workers;
    CampaignEngine engine(opts);
    const auto start = Clock::now();
    const CampaignOutcome outcome = engine.run(jobs);
    r.wall_ms = msSince(start);
    r.all_completed = outcome.allCompleted();
    r.jobs_per_sec = static_cast<double>(jobs.size()) * 1000.0 /
                     (r.wall_ms > 0.0 ? r.wall_ms : 1.0);
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_perf.json";
    long long cycles = 2000;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
        } else if (arg == "--cycles" && i + 1 < argc) {
            cycles = std::strtoll(argv[++i], nullptr, 10);
            if (cycles <= 0) {
                std::fprintf(stderr, "bad --cycles\n");
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: bench_perf [--out FILE] "
                         "[--cycles N]\n");
            return 2;
        }
    }

    try {
        const std::vector<SimJob> jobs = buildNamedCampaign(
            "smoke", Cycle{static_cast<std::uint64_t>(cycles)});

        std::vector<ModeResult> modes;
        modes.push_back(runInProcess(jobs));
        for (const int workers : {1, 2, 4})
            modes.push_back(runCampaign(jobs, workers));

        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         out_path.c_str());
            return 2;
        }
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"campaign_throughput\",\n"
                     "  \"campaign\": \"smoke\",\n"
                     "  \"cycles\": %lld,\n"
                     "  \"jobs\": %zu,\n"
                     "  \"modes\": [\n",
                     cycles, jobs.size());
        for (std::size_t i = 0; i < modes.size(); ++i) {
            const ModeResult &m = modes[i];
            std::fprintf(
                f,
                "    {\"mode\": \"%s\", \"workers\": %d, "
                "\"wall_ms\": %.3f, \"jobs_per_sec\": %.3f, "
                "\"all_completed\": %s}%s\n",
                m.mode.c_str(), m.workers, m.wall_ms,
                m.jobs_per_sec, m.all_completed ? "true" : "false",
                i + 1 < modes.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);

        for (const ModeResult &m : modes)
            std::printf("%-10s workers=%d  %8.1f ms  %7.2f "
                        "jobs/sec%s\n",
                        m.mode.c_str(), m.workers, m.wall_ms,
                        m.jobs_per_sec,
                        m.all_completed ? "" : "  INCOMPLETE");
        for (const ModeResult &m : modes)
            if (!m.all_completed)
                return 1;
        return 0;
    } catch (const SimError &e) {
        std::fprintf(stderr, "bench_perf: [%s] %s\n",
                     e.kind().c_str(), e.what());
        return 2;
    }
}
