/**
 * @file
 * Execution-layer throughput baselines, emitted as BENCH_perf.json
 * (stable key order) so successive PRs can diff orchestration
 * overhead and simulator speed.
 *
 * Two sections:
 *
 *  - campaign_throughput: jobs/sec of the smoke campaign run (a)
 *    in-process through a SweepEngine and (b) through the
 *    multi-process campaign orchestrator at 1, 2 and 4 workers —
 *    measured at TWO scale points. At the small point (2000 cycles
 *    per job) fork+handshake overhead dominates and the fleet loses
 *    to in-process; at the large point (20000 cycles) per-job work
 *    amortizes dispatch and the parallel speedup becomes measurable.
 *    Recording both keeps the overhead floor AND the scaling
 *    behaviour under regression watch.
 *
 *  - sim_speed: simulated cycles per wall second of a single Gpu,
 *    strict stepping vs the event-driven fast path (--fast /
 *    Gpu::setFastForward), per scheme x workload pair. Every case
 *    asserts the two runs end bit-identical (snapshot fingerprints)
 *    before reporting a speedup — a fast number from a divergent run
 *    would be meaningless.
 *
 * Usage: bench_perf [--out BENCH_perf.json] [--cycles N]
 *                   [--cycles-large N] [--sim-cycles N]
 */

#include <chrono>
#include <cstdio>
#include <thread>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec.hpp"
#include "gpu.hpp"
#include "kernels/workload.hpp"
#include "metrics/sweep_engine.hpp"
#include "sim/check.hpp"

namespace {

using namespace ckesim;
using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

// ---- campaign throughput ----------------------------------------------

struct ModeResult
{
    std::string mode;
    int workers = 1;
    double wall_ms = 0.0;
    double jobs_per_sec = 0.0;
    bool all_completed = false;
};

ModeResult
runInProcess(const std::vector<SimJob> &jobs)
{
    ModeResult r;
    r.mode = "in-process";
    r.workers = 1;
    SweepEngine engine(1); // fresh engine: empty memo cache
    const auto start = Clock::now();
    const std::vector<SimResult> results = engine.sweep(jobs);
    r.wall_ms = msSince(start);
    r.all_completed = results.size() == jobs.size();
    r.jobs_per_sec = static_cast<double>(jobs.size()) * 1000.0 /
                     (r.wall_ms > 0.0 ? r.wall_ms : 1.0);
    return r;
}

ModeResult
runCampaign(const std::vector<SimJob> &jobs, int workers)
{
    ModeResult r;
    r.mode = "campaign";
    r.workers = workers;
    CampaignOptions opts;
    opts.workers = workers;
    CampaignEngine engine(opts);
    const auto start = Clock::now();
    const CampaignOutcome outcome = engine.run(jobs);
    r.wall_ms = msSince(start);
    r.all_completed = outcome.allCompleted();
    r.jobs_per_sec = static_cast<double>(jobs.size()) * 1000.0 /
                     (r.wall_ms > 0.0 ? r.wall_ms : 1.0);
    return r;
}

struct ScalePoint
{
    std::string point;
    long long cycles = 0;
    std::size_t jobs = 0;
    std::vector<ModeResult> modes;
};

ScalePoint
measurePoint(const std::string &point, long long cycles)
{
    ScalePoint sp;
    sp.point = point;
    sp.cycles = cycles;
    const std::vector<SimJob> jobs = buildNamedCampaign(
        "smoke", Cycle{static_cast<std::uint64_t>(cycles)});
    sp.jobs = jobs.size();
    sp.modes.push_back(runInProcess(jobs));
    for (const int workers : {1, 2, 4})
        sp.modes.push_back(runCampaign(jobs, workers));
    return sp;
}

// ---- simulator speed (strict vs fast path) ----------------------------

struct SimSpeedCase
{
    int sms = 0;
    std::string workload;
    std::string scheme;
    double strict_ms = 0.0;
    double fast_ms = 0.0;
    double strict_cps = 0.0; ///< simulated cycles per wall second
    double fast_cps = 0.0;
    double speedup = 0.0;
    double skip_pct = 0.0; ///< % of cycles the fast path warped over
    bool bit_identical = false;
};

std::uint64_t
timedRun(const GpuConfig &cfg, const Workload &wl,
         const SchemeSpec &spec, Cycle cycles, bool fast,
         double &wall_ms, std::uint64_t &skipped)
{
    Gpu gpu(cfg, wl, spec);
    gpu.setFastForward(fast);
    const auto start = Clock::now();
    gpu.run(cycles);
    wall_ms = msSince(start);
    skipped = gpu.fastSkippedCycles();
    return gpu.snapshot().fingerprint;
}

SimSpeedCase
measureSimSpeed(const GpuConfig &cfg, const std::string &wl_name,
                const Workload &wl, const std::string &scheme_name,
                const SchemeSpec &spec, Cycle cycles)
{
    SimSpeedCase c;
    c.sms = cfg.num_sms;
    c.workload = wl_name;
    c.scheme = scheme_name;
    std::uint64_t skipped = 0;
    const std::uint64_t fp_strict = timedRun(
        cfg, wl, spec, cycles, false, c.strict_ms, skipped);
    const std::uint64_t fp_fast =
        timedRun(cfg, wl, spec, cycles, true, c.fast_ms, skipped);
    c.bit_identical = fp_strict == fp_fast;
    const double cyc = static_cast<double>(cycles.get());
    c.skip_pct = 100.0 * static_cast<double>(skipped) / cyc;
    c.strict_cps =
        cyc * 1000.0 / (c.strict_ms > 0.0 ? c.strict_ms : 1.0);
    c.fast_cps = cyc * 1000.0 / (c.fast_ms > 0.0 ? c.fast_ms : 1.0);
    c.speedup = c.fast_cps / (c.strict_cps > 0.0 ? c.strict_cps : 1.0);
    return c;
}

std::vector<SimSpeedCase>
runSimSpeed(Cycle cycles)
{
    struct WorkloadCase
    {
        std::string name;
        Workload wl;
    };
    const std::vector<WorkloadCase> workloads = {
        {"sv+ks", makeWorkload({"sv", "ks"})}, // memory-bound
        {"bp+hs", makeWorkload({"bp", "hs"})}, // compute-bound
    };

    struct SchemeCase
    {
        std::string name;
        SchemeSpec spec;
    };
    std::vector<SchemeCase> schemes;
    schemes.push_back({"smk", makeScheme(PartitionScheme::SmkDrf,
                                         BmiMode::None,
                                         MilMode::None)});
    {
        SchemeCase s{"ws", makeScheme(PartitionScheme::WarpedSlicer,
                                      BmiMode::None, MilMode::None)};
        s.spec.ws_profile_window = Cycle{5000};
        schemes.push_back(s);
    }
    {
        SchemeCase s{"ws-qbmi-dmil",
                     makeScheme(PartitionScheme::WarpedSlicer,
                                BmiMode::QBMI, MilMode::Dynamic)};
        s.spec.ws_profile_window = Cycle{5000};
        schemes.push_back(s);
    }
    {
        // Tight static SMIL: with one outstanding miss per kernel
        // the SMs spend most cycles waiting on DRAM horizons — the
        // fast path's best case on a memory-bound pair.
        SchemeCase s{"ws-smil1",
                     makeScheme(PartitionScheme::WarpedSlicer,
                                BmiMode::None, MilMode::Static)};
        s.spec.ws_profile_window = Cycle{5000};
        s.spec.smil_limits[0] = 1;
        s.spec.smil_limits[1] = 1;
        schemes.push_back(s);
    }

    // Two machine scales. On 1 SM the skip condition ("every
    // component's horizon in the future") is the SM's own idleness
    // and memory-bound cases skip most of their cycles; on 4 SMs the
    // global-idle intersection across independently phased SMs is
    // far smaller, so this row tracks how much the conservative
    // whole-machine skip leaves on the table.
    std::vector<SimSpeedCase> cases;
    for (const int sms : {1, 4}) {
        const GpuConfig cfg = makeSmallConfig(sms, sms == 1 ? 2 : 4);
        for (const WorkloadCase &w : workloads)
            for (const SchemeCase &s : schemes)
                cases.push_back(measureSimSpeed(
                    cfg, w.name, w.wl, s.name, s.spec, cycles));
    }
    return cases;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_path = "BENCH_perf.json";
    long long cycles = 2000;
    long long cycles_large = 20000;
    long long sim_cycles = 60000;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        long long *slot = nullptr;
        if (arg == "--out" && i + 1 < argc) {
            out_path = argv[++i];
            continue;
        } else if (arg == "--cycles" && i + 1 < argc) {
            slot = &cycles;
        } else if (arg == "--cycles-large" && i + 1 < argc) {
            slot = &cycles_large;
        } else if (arg == "--sim-cycles" && i + 1 < argc) {
            slot = &sim_cycles;
        } else {
            std::fprintf(stderr,
                         "usage: bench_perf [--out FILE] "
                         "[--cycles N] [--cycles-large N] "
                         "[--sim-cycles N]\n");
            return 2;
        }
        *slot = std::strtoll(argv[++i], nullptr, 10);
        if (*slot <= 0) {
            std::fprintf(stderr, "bad %s\n", arg.c_str());
            return 2;
        }
    }

    try {
        std::vector<ScalePoint> points;
        points.push_back(measurePoint("small", cycles));
        points.push_back(measurePoint("large", cycles_large));

        const std::vector<SimSpeedCase> speed =
            runSimSpeed(Cycle{static_cast<std::uint64_t>(sim_cycles)});

        std::FILE *f = std::fopen(out_path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "cannot write '%s'\n",
                         out_path.c_str());
            return 2;
        }
        // Worker scaling only shows up with cores to scale onto;
        // record the host so a 1-core CI runner's numbers are read
        // as overhead measurements, not scaling regressions.
        std::fprintf(f,
                     "{\n"
                     "  \"bench\": \"perf\",\n"
                     "  \"host_cores\": %u,\n"
                     "  \"campaign_throughput\": {\n"
                     "    \"campaign\": \"smoke\",\n"
                     "    \"points\": [\n",
                     std::thread::hardware_concurrency());
        for (std::size_t p = 0; p < points.size(); ++p) {
            const ScalePoint &sp = points[p];
            std::fprintf(f,
                         "      {\"point\": \"%s\", \"cycles\": "
                         "%lld, \"jobs\": %zu, \"modes\": [\n",
                         sp.point.c_str(), sp.cycles, sp.jobs);
            for (std::size_t i = 0; i < sp.modes.size(); ++i) {
                const ModeResult &m = sp.modes[i];
                std::fprintf(
                    f,
                    "        {\"mode\": \"%s\", \"workers\": %d, "
                    "\"wall_ms\": %.3f, \"jobs_per_sec\": %.3f, "
                    "\"all_completed\": %s}%s\n",
                    m.mode.c_str(), m.workers, m.wall_ms,
                    m.jobs_per_sec,
                    m.all_completed ? "true" : "false",
                    i + 1 < sp.modes.size() ? "," : "");
            }
            std::fprintf(f, "      ]}%s\n",
                         p + 1 < points.size() ? "," : "");
        }
        std::fprintf(f,
                     "    ]\n"
                     "  },\n"
                     "  \"sim_speed\": {\n"
                     "    \"cycles\": %lld,\n"
                     "    \"cases\": [\n",
                     sim_cycles);
        for (std::size_t i = 0; i < speed.size(); ++i) {
            const SimSpeedCase &c = speed[i];
            std::fprintf(
                f,
                "      {\"sms\": %d, \"workload\": \"%s\", "
                "\"scheme\": \"%s\", "
                "\"strict_ms\": %.3f, \"fast_ms\": %.3f, "
                "\"strict_cycles_per_sec\": %.0f, "
                "\"fast_cycles_per_sec\": %.0f, "
                "\"speedup\": %.3f, \"skip_pct\": %.1f, "
                "\"bit_identical\": %s}%s\n",
                c.sms, c.workload.c_str(), c.scheme.c_str(),
                c.strict_ms, c.fast_ms, c.strict_cps, c.fast_cps,
                c.speedup, c.skip_pct,
                c.bit_identical ? "true" : "false",
                i + 1 < speed.size() ? "," : "");
        }
        std::fprintf(f,
                     "    ]\n"
                     "  }\n"
                     "}\n");
        std::fclose(f);

        for (const ScalePoint &sp : points)
            for (const ModeResult &m : sp.modes)
                std::printf("%-6s %-10s workers=%d  %8.1f ms  "
                            "%7.2f jobs/sec%s\n",
                            sp.point.c_str(), m.mode.c_str(),
                            m.workers, m.wall_ms, m.jobs_per_sec,
                            m.all_completed ? "" : "  INCOMPLETE");
        for (const SimSpeedCase &c : speed)
            std::printf("sim sms=%d %-6s %-13s strict %8.0f cyc/s  "
                        "fast %8.0f cyc/s  %.2fx  skip %.1f%%%s\n",
                        c.sms, c.workload.c_str(), c.scheme.c_str(),
                        c.strict_cps, c.fast_cps, c.speedup,
                        c.skip_pct,
                        c.bit_identical ? "" : "  DIVERGED");

        int rc = 0;
        for (const ScalePoint &sp : points)
            for (const ModeResult &m : sp.modes)
                if (!m.all_completed)
                    rc = 1;
        for (const SimSpeedCase &c : speed)
            if (!c.bit_identical)
                rc = 1;
        return rc;
    } catch (const SimError &e) {
        std::fprintf(stderr, "bench_perf: [%s] %s\n",
                     e.kind().c_str(), e.what());
        return 2;
    }
}
