/**
 * @file
 * Reproduces Figure 12 — the paper's headline evaluation on top of
 * Warped-Slicer: (a) Weighted Speedup, (b) normalized ANTT, (c)
 * normalized fairness, (d) L1D miss rate, (e) L1D rsfail rate, (f)
 * LSU stall fraction and (g) computing resource utilization, by
 * workload class, for Spatial / WS / WS-QBMI / WS-DMIL.
 *
 * Paper headline: average WS 1.13 (Spatial), 1.20 (WS), 1.22
 * (WS-QBMI), 1.49 (WS-DMIL): +1.5% and +24.6% over WS; ANTT improves
 * 40.5% / 56.1%; fairness improves 17.8% / 32.3%.
 */

#include "bench_util.hpp"

#include <algorithm>

namespace {

using namespace ckesim;

const NamedScheme kSchemes[] = {NamedScheme::Spatial, NamedScheme::WS,
                                NamedScheme::WS_QBMI,
                                NamedScheme::WS_DMIL};
constexpr std::size_t kWsCol = 1; ///< normalization base column

void
runFigure12(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();

    std::vector<std::string> names;
    for (NamedScheme s : kSchemes)
        names.push_back(schemeName(s));

    const std::vector<Workload> pairs = benchPairs();
    std::vector<SimJob> jobs;
    for (const Workload &w : pairs)
        for (NamedScheme s : kSchemes)
            jobs.push_back(SimJob::concurrent(cfg, cycles, w, s));
    const std::vector<SimResult> results = engine.sweep(jobs);

    ClassTable ws("Figure 12(a): Weighted Speedup", names);
    ClassTable antt_t(
        "Figure 12(b): ANTT normalized to WS (lower is better)",
        names);
    ClassTable fair("Figure 12(c): fairness normalized to WS "
                    "(higher is better)",
                    names);
    ClassTable miss("Figure 12(d): L1D miss rate", names);
    ClassTable rsfail("Figure 12(e): L1D rsfail rate", names);
    ClassTable lsu("Figure 12(f): LSU stall fraction", names);
    ClassTable util("Figure 12(g): computing resource utilization",
                    names);

    std::size_t idx = 0;
    for (const Workload &w : pairs) {
        for (std::size_t s = 0; s < std::size(kSchemes); ++s) {
            const ConcurrentResult &r = *results[idx++].concurrent;
            ws.add(w.cls(), s, r.weighted_speedup);
            antt_t.add(w.cls(), s, r.antt_value);
            fair.add(w.cls(), s, r.fairness);
            KernelStats total;
            for (const KernelStats &k : r.stats)
                total += k;
            miss.add(w.cls(), s, total.l1dMissRate());
            rsfail.add(w.cls(), s,
                       std::max(total.l1dRsFailRate(), 1e-6));
            lsu.add(w.cls(), s,
                    std::max(r.sm_stats.lsuStallFraction(), 1e-6));
            const double slots =
                static_cast<double>(cfg.sm.num_schedulers) *
                r.sm_stats.cycles;
            util.add(w.cls(), s,
                     (r.sm_stats.alu_issue_slots +
                      r.sm_stats.sfu_issue_slots) /
                         std::max(slots, 1.0));
        }
    }

    ws.print();
    antt_t.print(kWsCol);
    fair.print(kWsCol);
    miss.print();
    rsfail.print();
    lsu.print();
    util.print();

    const double ws_all = ws.geomeanAll(1);
    const double qbmi = ws.geomeanAll(2);
    const double dmil = ws.geomeanAll(3);
    std::printf("\nWS improvement over WS: QBMI %+.1f%%, DMIL "
                "%+.1f%%  (paper: +1.5%%, +24.6%%)\n",
                100.0 * (qbmi / ws_all - 1.0),
                100.0 * (dmil / ws_all - 1.0));
    const double antt_ws = antt_t.geomeanAll(1);
    std::printf("ANTT improvement over WS: QBMI %+.1f%%, DMIL "
                "%+.1f%%  (paper: 40.5%%, 56.1%% better)\n",
                100.0 * (1.0 - antt_t.geomeanAll(2) / antt_ws),
                100.0 * (1.0 - antt_t.geomeanAll(3) / antt_ws));

    report.counters["ws"] = ws_all;
    report.counters["ws_qbmi"] = qbmi;
    report.counters["ws_dmil"] = dmil;
    report.counters["spatial"] = ws.geomeanAll(0);
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment(
            "figure12/warped_slicer_eval", runFigure12);
    });
}
