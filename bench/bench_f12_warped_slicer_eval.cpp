/**
 * @file
 * Reproduces Figure 12 — the paper's headline evaluation on top of
 * Warped-Slicer: (a) Weighted Speedup, (b) normalized ANTT, (c)
 * normalized fairness, (d) L1D miss rate, (e) L1D rsfail rate, (f)
 * LSU stall fraction and (g) computing resource utilization, by
 * workload class, for Spatial / WS / WS-QBMI / WS-DMIL.
 *
 * Paper headline: average WS 1.13 (Spatial), 1.20 (WS), 1.22
 * (WS-QBMI), 1.49 (WS-DMIL): +1.5% and +24.6% over WS; ANTT improves
 * 40.5% / 56.1%; fairness improves 17.8% / 32.3%.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

const NamedScheme kSchemes[] = {NamedScheme::Spatial, NamedScheme::WS,
                                NamedScheme::WS_QBMI,
                                NamedScheme::WS_DMIL};

struct Metrics
{
    ClassAggregate ws, antt_v, fairness, miss, rsfail, lsu_stall,
        util;
};

void
runFigure12(benchmark::State &state)
{
    const GpuConfig cfg = benchConfig();
    Runner runner(cfg, benchCycles());

    std::map<NamedScheme, Metrics> m;
    for (const Workload &w : benchPairs()) {
        for (NamedScheme s : kSchemes) {
            const ConcurrentResult r = runner.run(w, s);
            Metrics &mm = m[s];
            mm.ws.add(w.cls(), r.weighted_speedup);
            mm.antt_v.add(w.cls(), r.antt_value);
            mm.fairness.add(w.cls(), r.fairness);
            KernelStats total;
            for (const KernelStats &k : r.stats)
                total += k;
            mm.miss.add(w.cls(), total.l1dMissRate());
            mm.rsfail.add(w.cls(),
                          std::max(total.l1dRsFailRate(), 1e-6));
            mm.lsu_stall.add(
                w.cls(),
                std::max(r.sm_stats.lsuStallFraction(), 1e-6));
            const double slots =
                static_cast<double>(cfg.sm.num_schedulers) *
                r.sm_stats.cycles;
            mm.util.add(w.cls(),
                        (r.sm_stats.alu_issue_slots +
                         r.sm_stats.sfu_issue_slots) /
                            std::max(slots, 1.0));
        }
    }

    auto table = [&](const char *title, auto pick,
                     bool normalize_to_ws = false) {
        printHeader(title);
        std::printf("%-8s", "class");
        for (NamedScheme s : kSchemes)
            std::printf(" %10s", schemeName(s).c_str());
        std::printf("\n");
        for (WorkloadClass cls : {WorkloadClass::CC, WorkloadClass::CM,
                                  WorkloadClass::MM}) {
            std::printf("%-8s", classLabel(cls));
            const double base =
                pick(m[NamedScheme::WS]).geomean(cls);
            for (NamedScheme s : kSchemes) {
                double v = pick(m[s]).geomean(cls);
                if (normalize_to_ws && base > 0)
                    v /= base;
                std::printf(" %10.3f", v);
            }
            std::printf("\n");
        }
        std::printf("%-8s", "ALL");
        const double base_all =
            pick(m[NamedScheme::WS]).geomeanAll();
        for (NamedScheme s : kSchemes) {
            double v = pick(m[s]).geomeanAll();
            if (normalize_to_ws && base_all > 0)
                v /= base_all;
            std::printf(" %10.3f", v);
        }
        std::printf("\n");
    };

    table("Figure 12(a): Weighted Speedup",
          [](Metrics &x) -> ClassAggregate & { return x.ws; });
    table("Figure 12(b): ANTT normalized to WS (lower is better)",
          [](Metrics &x) -> ClassAggregate & { return x.antt_v; },
          true);
    table("Figure 12(c): fairness normalized to WS "
          "(higher is better)",
          [](Metrics &x) -> ClassAggregate & { return x.fairness; },
          true);
    table("Figure 12(d): L1D miss rate",
          [](Metrics &x) -> ClassAggregate & { return x.miss; });
    table("Figure 12(e): L1D rsfail rate",
          [](Metrics &x) -> ClassAggregate & { return x.rsfail; });
    table("Figure 12(f): LSU stall fraction",
          [](Metrics &x) -> ClassAggregate & { return x.lsu_stall; });
    table("Figure 12(g): computing resource utilization",
          [](Metrics &x) -> ClassAggregate & { return x.util; });

    const double ws = m[NamedScheme::WS].ws.geomeanAll();
    const double qbmi = m[NamedScheme::WS_QBMI].ws.geomeanAll();
    const double dmil = m[NamedScheme::WS_DMIL].ws.geomeanAll();
    std::printf("\nWS improvement over WS: QBMI %+.1f%%, DMIL "
                "%+.1f%%  (paper: +1.5%%, +24.6%%)\n",
                100.0 * (qbmi / ws - 1.0),
                100.0 * (dmil / ws - 1.0));
    const double antt_ws =
        m[NamedScheme::WS].antt_v.geomeanAll();
    std::printf("ANTT improvement over WS: QBMI %+.1f%%, DMIL "
                "%+.1f%%  (paper: 40.5%%, 56.1%% better)\n",
                100.0 * (1.0 - m[NamedScheme::WS_QBMI]
                                   .antt_v.geomeanAll() /
                                   antt_ws),
                100.0 * (1.0 - m[NamedScheme::WS_DMIL]
                                   .antt_v.geomeanAll() /
                                   antt_ws));

    state.counters["ws"] = ws;
    state.counters["ws_qbmi"] = qbmi;
    state.counters["ws_dmil"] = dmil;
    state.counters["spatial"] =
        m[NamedScheme::Spatial].ws.geomeanAll();
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment(
            "figure12/warped_slicer_eval", runFigure12);
    });
}
