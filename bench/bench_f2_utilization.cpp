/**
 * @file
 * Reproduces Figure 2: computing-resource utilization (ALU / SFU) and
 * the percentage of LSU stall cycles for every benchmark, arranged in
 * decreasing order of ALU utilization. The paper's signature: an
 * inverse relationship between compute utilization and LSU stalls,
 * with the >20%-stall kernels forming the memory-intensive class.
 */

#include "bench_util.hpp"

#include <algorithm>

#include "kernels/profile.hpp"

namespace {

using namespace ckesim;

void
runFigure2(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();

    // One isolated job per benchmark, fanned out across the engine.
    std::vector<SimJob> jobs;
    for (const KernelProfile &p : benchmarkSuite())
        jobs.push_back(SimJob::isolated(cfg, cycles, p));
    const std::vector<SimResult> results = engine.sweep(jobs);

    struct Row
    {
        std::string name;
        double alu, sfu, lsu_stall;
        bool memory;
    };
    std::vector<Row> rows;
    std::size_t idx = 0;
    for (const KernelProfile &p : benchmarkSuite()) {
        const IsolatedResult &res = *results[idx++].isolated;
        const SmStats &sm = res.sm_stats;
        const double slots =
            static_cast<double>(cfg.sm.num_schedulers) * sm.cycles;
        Row r;
        r.name = p.name;
        r.alu = sm.alu_issue_slots / slots;
        r.sfu = sm.sfu_issue_slots / slots;
        r.lsu_stall = sm.lsuStallFraction();
        r.memory = p.isMemoryIntensive();
        rows.push_back(r);
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &a, const Row &b) { return a.alu > b.alu; });

    printHeader("Figure 2: computing resource utilization and LSU "
                "stalls (sorted by ALU utilization)");
    std::printf("%-5s %10s %10s %10s %6s\n", "bench", "ALU_util",
                "SFU_util", "LSU_stall", "class");
    bool inverse_holds = true;
    double mean_c_stall = 0.0, mean_m_stall = 0.0;
    int nc = 0, nm = 0;
    for (const Row &r : rows) {
        std::printf("%-5s %10.3f %10.3f %10.3f %6s\n", r.name.c_str(),
                    r.alu, r.sfu, r.lsu_stall, r.memory ? "M" : "C");
        if (r.memory) {
            mean_m_stall += r.lsu_stall;
            ++nm;
        } else {
            mean_c_stall += r.lsu_stall;
            ++nc;
        }
    }
    mean_c_stall /= nc;
    mean_m_stall /= nm;
    inverse_holds = mean_m_stall > mean_c_stall;

    std::printf("\nmean LSU stall: C kernels %.3f, M kernels %.3f "
                "(paper: C < 20%% < M)\n",
                mean_c_stall, mean_m_stall);
    std::printf("inverse utilization/stall relationship: %s\n",
                inverse_holds ? "yes" : "NO");

    report.counters["mean_c_stall"] = mean_c_stall;
    report.counters["mean_m_stall"] = mean_m_stall;
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure2/utilization",
                                              runFigure2);
    });
}
