/**
 * @file
 * Reproduces Figure 3: (a) per-SM performance scalability of bp and
 * sv as the TB count per SM grows (bp scales near-linearly; sv rises
 * then falls), and (b) the Warped-Slicer sweet point for bp+sv with
 * its theoretical Weighted Speedup (paper: sweet point (9,4),
 * theoretical WS 1.94).
 */

#include "bench_util.hpp"

#include "core/warped_slicer.hpp"

namespace {

using namespace ckesim;

void
runScalability(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();
    const KernelProfile &bp = findProfile("bp");
    const KernelProfile &sv = findProfile("sv");

    // The engine fans the per-TB-quota isolated runs of both curves
    // out in parallel and memoizes each point.
    const ScalabilityCurve bp_curve =
        engine.scalability(cfg, cycles, bp);
    const ScalabilityCurve sv_curve =
        engine.scalability(cfg, cycles, sv);

    printHeader("Figure 3(a): normalized IPC vs TBs per SM "
                "(isolated)");
    const double bp_max = bp_curve.at(bp_curve.maxTbs());
    const double sv_max = sv_curve.at(sv_curve.maxTbs());
    std::printf("%4s %12s %12s\n", "TB#", "bp", "sv");
    const int tbs = std::max(bp_curve.maxTbs(), sv_curve.maxTbs());
    for (int t = 1; t <= tbs; ++t) {
        std::printf("%4d %12s %12s\n", t,
                    t <= bp_curve.maxTbs()
                        ? fmt(bp_curve.at(t) / bp_max).c_str()
                        : "-",
                    t <= sv_curve.maxTbs()
                        ? fmt(sv_curve.at(t) / sv_max).c_str()
                        : "-");
    }

    // Shape checks the paper relies on.
    const bool bp_monotonic_ish =
        bp_curve.at(bp_curve.maxTbs()) > 0.8 * bp_max &&
        bp_curve.at(1) < 0.5 * bp_max;
    int sv_peak_tb = 1;
    for (int t = 1; t <= sv_curve.maxTbs(); ++t)
        if (sv_curve.at(t) > sv_curve.at(sv_peak_tb))
            sv_peak_tb = t;
    const bool sv_peaks_early = sv_peak_tb < sv_curve.maxTbs();

    printHeader("Figure 3(b): Warped-Slicer sweet point for bp+sv");
    const Workload wl = makeWorkload({"bp", "sv"});
    const SweetPoint sweet =
        findSweetPoint({bp_curve, sv_curve}, wl.kernels, cfg.sm);
    std::printf("sweet point: (%d, %d)   theoretical WS: %s\n",
                sweet.tbs[0], sweet.tbs[1],
                fmt(sweet.theoretical_ws).c_str());
    std::printf("paper: sweet point (9, 4), theoretical WS 1.94\n");
    std::printf("bp scales up: %s   sv peaks before max: %s "
                "(peak at %d TBs)\n",
                bp_monotonic_ish ? "yes" : "NO",
                sv_peaks_early ? "yes" : "NO", sv_peak_tb);

    report.counters["sweet_bp"] = sweet.tbs[0];
    report.counters["sweet_sv"] = sweet.tbs[1];
    report.counters["theoretical_ws"] = sweet.theoretical_ws;
    report.counters["sv_peak_tb"] = sv_peak_tb;
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure3/scalability",
                                              runScalability);
    });
}
