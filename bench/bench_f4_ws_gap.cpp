/**
 * @file
 * Reproduces Figure 4: theoretical vs achieved Weighted Speedup of
 * dynamic Warped-Slicer by workload class. The paper's signature:
 * C+C achieves close to the theoretical WS, while interference makes
 * C+M and M+M fall well short.
 */

#include "bench_util.hpp"

namespace {

using namespace ckesim;

void
runFigure4(BenchReport &report)
{
    SweepEngine &engine = benchEngine();
    const GpuConfig cfg = benchConfig();
    const Cycle cycles = benchCycles();

    const std::vector<Workload> pairs = benchPairs();
    std::vector<SimJob> jobs;
    for (const Workload &w : pairs)
        jobs.push_back(
            SimJob::concurrent(cfg, cycles, w, NamedScheme::WS));
    const std::vector<SimResult> results = engine.sweep(jobs);

    ClassAggregate theoretical, achieved;
    std::size_t idx = 0;
    for (const Workload &w : pairs) {
        const ConcurrentResult &res = *results[idx++].concurrent;
        theoretical.add(w.cls(), res.theoretical_ws);
        achieved.add(w.cls(), res.weighted_speedup);
    }

    printHeader("Figure 4: dynamic Warped-Slicer, theoretical vs "
                "achieved Weighted Speedup (geomean)");
    std::printf("%-6s %12s %10s %8s\n", "class", "theoretical",
                "achieved", "gap");
    for (WorkloadClass cls :
         {WorkloadClass::CC, WorkloadClass::CM, WorkloadClass::MM}) {
        const double t = theoretical.geomean(cls);
        const double a = achieved.geomean(cls);
        std::printf("%-6s %12.3f %10.3f %7.1f%%\n", classLabel(cls),
                    t, a, t > 0 ? 100.0 * (t - a) / t : 0.0);
    }
    const double t_all = theoretical.geomeanAll();
    const double a_all = achieved.geomeanAll();
    std::printf("%-6s %12.3f %10.3f %7.1f%%\n", "ALL", t_all, a_all,
                100.0 * (t_all - a_all) / t_all);
    std::printf("\npaper: C+C nearly closes the gap; C+M and M+M "
                "fall far short of theoretical\n");

    report.counters["theoretical_all"] = t_all;
    report.counters["achieved_all"] = a_all;
}

} // namespace

int
main(int argc, char **argv)
{
    return ckesim::benchutil::benchMain(argc, argv, [] {
        ckesim::benchutil::registerExperiment("figure4/ws_gap",
                                              runFigure4);
    });
}
