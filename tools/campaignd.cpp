/**
 * @file
 * ckesim-campaignd: command-line front end of the fault-tolerant
 * campaign orchestrator. Builds a named campaign, runs it over a
 * forked worker fleet (or in-process), and prints a diff-stable
 * result table.
 *
 * Output contract: stdout carries ONLY the table — campaign header
 * (name, cycles, fingerprint) plus one line per job with its content
 * key, terminal state and result fingerprint — and is byte-identical
 * for any worker count, chaos plan or crash/redispatch history that
 * reaches the same terminal states. Fleet accounting (dispatches,
 * deaths, respawns, heartbeats) goes to stderr. The CI kill-soak
 * leans on this: `campaignd ... > table.txt` then diff.
 *
 * Usage:
 *   ckesim-campaignd [--campaign smoke] [--cycles N] [--workers N]
 *                    [--journal BASE] [--resume] [--in-process]
 *                    [--chaos kill-worker] [--heartbeat-ms N]
 *                    [--liveness-ms N] [--max-attempts N]
 *                    [--poison-deaths N]
 *
 *   --journal BASE   durable shard/merged journals at BASE.*
 *   --resume         keep existing journals (default wipes them)
 *   --chaos MODE     inject fleet faults; kill-worker = SIGKILL the
 *                    worker on every job's first dispatch attempt
 *
 * SIGTERM/SIGINT drain the campaign: in-flight jobs finish, pending
 * jobs are marked drained, workers shut down cleanly.
 *
 * Exit codes: 0 = all jobs completed, 1 = failures (failed, poisoned
 * or exhausted jobs), 2 = usage/config error, 3 = drained.
 */

#include <signal.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec.hpp"
#include "metrics/journal.hpp"
#include "sim/check.hpp"

namespace {

using namespace ckesim;

CampaignEngine *g_engine = nullptr;

void
onDrainSignal(int)
{
    if (g_engine != nullptr)
        g_engine->requestDrain(); // atomic store: signal-safe
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ckesim-campaignd [--campaign smoke|pairs] "
        "[--cycles N] [--workers N]\n"
        "                        [--journal BASE] [--resume] "
        "[--in-process]\n"
        "                        [--chaos kill-worker] "
        "[--heartbeat-ms N] [--liveness-ms N]\n"
        "                        [--max-attempts N] "
        "[--poison-deaths N]\n");
}

/** Stable 32-bit fingerprint of a result (CRC of its canonical
 *  encoding — the same bytes the journal stores). */
std::uint32_t
resultFingerprint(const SimResult &result)
{
    const std::vector<std::uint8_t> bytes = encodeSimResult(result);
    return crc32(bytes.data(), bytes.size());
}

bool
parseLong(const char *s, long long &out)
{
    char *end = nullptr;
    out = std::strtoll(s, &end, 10);
    return end != nullptr && *end == '\0' && end != s;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string campaign = "smoke";
    std::string chaos;
    long long cycles = 20000;
    CampaignOptions opts;

    bool resume = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--campaign" && has_value) {
            campaign = argv[++i];
        } else if (arg == "--cycles" && has_value) {
            if (!parseLong(argv[++i], cycles) || cycles <= 0) {
                usage();
                return 2;
            }
        } else if (arg == "--workers" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1 || v > 256) {
                usage();
                return 2;
            }
            opts.workers = static_cast<int>(v);
        } else if (arg == "--journal" && has_value) {
            opts.journal_base = argv[++i];
        } else if (arg == "--resume") {
            resume = true;
        } else if (arg == "--in-process") {
            opts.force_in_process = true;
        } else if (arg == "--chaos" && has_value) {
            chaos = argv[++i];
        } else if (arg == "--heartbeat-ms" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                usage();
                return 2;
            }
            opts.heartbeat_ms = static_cast<std::uint64_t>(v);
        } else if (arg == "--liveness-ms" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                usage();
                return 2;
            }
            opts.liveness_deadline_ms =
                static_cast<std::uint64_t>(v);
        } else if (arg == "--max-attempts" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                usage();
                return 2;
            }
            opts.max_dispatch_attempts = static_cast<int>(v);
        } else if (arg == "--poison-deaths" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                usage();
                return 2;
            }
            opts.poison_worker_deaths = static_cast<int>(v);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    if (!chaos.empty()) {
        if (chaos == "kill-worker") {
            // SIGKILL the worker on every job's FIRST dispatch
            // attempt; re-dispatches (attempt >= 1) run clean. The
            // terminal states — and therefore the stdout table —
            // match an unharassed run exactly.
            ProcFaultSpec spec;
            spec.kind = ProcFaultKind::KillWorkerMidJob;
            spec.attempts = 1;
            opts.faults = ProcFaultPlan({spec});
        } else {
            std::fprintf(stderr,
                         "unknown chaos mode '%s' (try: "
                         "kill-worker)\n",
                         chaos.c_str());
            return 2;
        }
    }

    if (!resume && !opts.journal_base.empty()) {
        // Fresh campaign: drop stale shards and the merged journal so
        // the run cannot be satisfied by a previous campaign's
        // results.
        for (int slot = 0; slot < 256; ++slot) {
            const std::string p =
                CampaignEngine::shardPath(opts.journal_base, slot);
            if (::unlink(p.c_str()) != 0)
                break;
        }
        (void)::unlink(
            CampaignEngine::mergedPath(opts.journal_base).c_str());
    }

    try {
        const std::vector<SimJob> jobs =
            buildNamedCampaign(campaign, Cycle{
                static_cast<std::uint64_t>(cycles)});

        CampaignEngine engine(opts);
        g_engine = &engine;
        struct sigaction sa;
        std::memset(&sa, 0, sizeof sa);
        sa.sa_handler = onDrainSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);

        const CampaignOutcome outcome = engine.run(jobs);
        g_engine = nullptr;

        // ---- diff-stable table (stdout) ----------------------------
        std::printf("campaign %s cycles=%lld jobs=%zu "
                    "fingerprint=%016" PRIx64 "\n",
                    campaign.c_str(), cycles, jobs.size(),
                    campaignFingerprint(jobs));
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            const CampaignJobOutcome &out = outcome.jobs[i];
            if (out.ok())
                std::printf("%4zu %016" PRIx64 " %-10s %08" PRIx32
                            " %s\n",
                            i, jobs[i].key(),
                            campaignJobStateName(out.state),
                            resultFingerprint(out.result),
                            jobs[i].describe().c_str());
            else
                std::printf("%4zu %016" PRIx64 " %-10s %-8s %s\n",
                            i, jobs[i].key(),
                            campaignJobStateName(out.state),
                            out.error_kind.c_str(),
                            jobs[i].describe().c_str());
        }

        // ---- fleet accounting (stderr) -----------------------------
        const CampaignReport &r = outcome.report;
        std::fprintf(
            stderr,
            "workers=%d%s completed=%" PRIu64 " journal_hits=%" PRIu64
            " dispatched=%" PRIu64 " redispatched=%" PRIu64 "\n"
            "worker_deaths=%" PRIu64 " respawned=%" PRIu64
            " hung_killed=%" PRIu64 " corrupt_frames=%" PRIu64
            " heartbeats=%" PRIu64 "\n"
            "poisoned=%" PRIu64 " failed=%" PRIu64 " drained=%" PRIu64
            "%s%s\n",
            opts.workers,
            r.degraded_in_process ? " (degraded in-process)" : "",
            r.completed, r.journal_hits, r.dispatched,
            r.redispatched, r.worker_deaths, r.workers_respawned,
            r.hung_workers_killed, r.corrupt_frames, r.heartbeats,
            r.poisoned, r.failed, r.drained,
            r.drain_requested ? " drain_requested" : "",
            outcome.allCompleted() ? " ALL-COMPLETED" : "");

        if (outcome.allCompleted())
            return 0;
        if (r.drain_requested && r.poisoned == 0 && r.failed == 0)
            return 3;
        return 1;
    } catch (const SimError &e) {
        std::fprintf(stderr, "campaignd: [%s] %s\n",
                     e.kind().c_str(), e.what());
        return 2;
    }
}
