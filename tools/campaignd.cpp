/**
 * @file
 * ckesim-campaignd: command-line front end of the fault-tolerant
 * campaign orchestrator. Two modes:
 *
 *  - batch (default): build a named campaign, run it over a forked
 *    worker fleet (or in-process), print a diff-stable result table;
 *  - service (--serve SOCKET): listen on an AF_UNIX socket as a
 *    long-lived daemon, accept concurrent ckesim-campaign-client
 *    submissions, dedupe jobs across campaigns by content hash, and
 *    stream results back (DESIGN.md section 16).
 *
 * Output contract (batch): stdout carries ONLY the table — the
 * shared formatCampaignTable, byte-identical for any worker count,
 * chaos plan or crash/redispatch history that reaches the same
 * terminal states, and byte-identical to the table a service client
 * prints for the same campaign. Fleet accounting goes to stderr.
 * The CI kill-soak leans on this: `campaignd ... > table.txt` then
 * diff.
 *
 * Usage:
 *   ckesim-campaignd [--campaign smoke] [--cycles N] [--workers N]
 *                    [--journal BASE] [--resume] [--in-process]
 *                    [--chaos kill-worker] [--heartbeat-ms N]
 *                    [--liveness-ms N] [--max-attempts N]
 *                    [--poison-deaths N]
 *   ckesim-campaignd --serve SOCKET [--workers N] [--journal BASE]
 *                    [--resume] [--max-pending-jobs N]
 *                    [--max-client-campaigns N] [--idle-timeout-ms N]
 *                    [--heartbeat-ms N] [--liveness-ms N]
 *                    [--max-attempts N]
 *
 *   --journal BASE   durable shard journals at BASE.shard<N>
 *   --resume         keep existing journals (default wipes them);
 *                    in service mode this is the SIGKILL-recovery
 *                    path — completed results replay instead of
 *                    re-running
 *   --chaos MODE     inject fleet faults; kill-worker = SIGKILL the
 *                    worker on every job's first dispatch attempt
 *
 * SIGTERM/SIGINT drain either mode: in-flight jobs finish, pending
 * jobs are marked drained, workers shut down cleanly; the service
 * additionally refuses new submissions while draining.
 *
 * Exit codes: 0 = all jobs completed (batch) / clean drain (serve),
 * 1 = failures (failed, poisoned or exhausted jobs), 2 =
 * usage/config error, 3 = drained (batch, with unstarted jobs).
 */

#include <signal.h>
#include <unistd.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "campaign/campaign_engine.hpp"
#include "campaign/campaign_spec.hpp"
#include "campaign/service.hpp"
#include "metrics/journal.hpp"
#include "sim/check.hpp"

namespace {

using namespace ckesim;

CampaignEngine *g_engine = nullptr;
CampaignService *g_service = nullptr;

void
onDrainSignal(int)
{
    // Both are atomic stores: signal-safe.
    if (g_engine != nullptr)
        g_engine->requestDrain();
    if (g_service != nullptr)
        g_service->requestDrain();
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ckesim-campaignd [--campaign smoke|pairs] "
        "[--cycles N] [--workers N]\n"
        "                        [--journal BASE] [--resume] "
        "[--in-process]\n"
        "                        [--chaos kill-worker] "
        "[--heartbeat-ms N] [--liveness-ms N]\n"
        "                        [--max-attempts N] "
        "[--poison-deaths N]\n"
        "       ckesim-campaignd --serve SOCKET [--workers N] "
        "[--journal BASE] [--resume]\n"
        "                        [--max-pending-jobs N] "
        "[--max-client-campaigns N]\n"
        "                        [--idle-timeout-ms N] "
        "[--heartbeat-ms N] [--liveness-ms N]\n"
        "                        [--max-attempts N]\n");
}

bool
parseLong(const char *s, long long &out)
{
    char *end = nullptr;
    out = std::strtoll(s, &end, 10);
    return end != nullptr && *end == '\0' && end != s;
}

/** Validate a campaign name up front so a typo is a usage error
 *  with the accepted names listed, not a late SimError. */
bool
knownCampaign(const std::string &name)
{
    for (const std::string &known : namedCampaigns())
        if (known == name)
            return true;
    std::fprintf(stderr, "unknown campaign '%s' (known:",
                 name.c_str());
    for (const std::string &known : namedCampaigns())
        std::fprintf(stderr, " %s", known.c_str());
    std::fprintf(stderr, ")\n");
    return false;
}

int
runService(const ServiceOptions &opts)
{
    try {
        CampaignService service(opts);
        g_service = &service;
        struct sigaction sa;
        std::memset(&sa, 0, sizeof sa);
        sa.sa_handler = onDrainSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);

        const ServiceReport r = service.serve();
        g_service = nullptr;

        std::fprintf(
            stderr,
            "connections=%" PRIu64 " submissions=%" PRIu64
            " rejected=%" PRIu64 " campaigns_done=%" PRIu64 "\n"
            "jobs_completed=%" PRIu64 " jobs_failed=%" PRIu64
            " journal_hits=%" PRIu64 " dedupe_hits=%" PRIu64
            " dispatched=%" PRIu64 " redispatched=%" PRIu64 "\n"
            "client_corrupt=%" PRIu64 " client_disconnects=%" PRIu64
            " worker_deaths=%" PRIu64 " respawned=%" PRIu64
            " hung_killed=%" PRIu64 " pings=%" PRIu64 "%s\n",
            r.connections, r.submissions, r.rejected,
            r.campaigns_done, r.jobs_completed, r.jobs_failed,
            r.journal_hits, r.dedupe_hits, r.dispatched,
            r.redispatched, r.client_corrupt, r.client_disconnects,
            r.worker_deaths, r.workers_respawned,
            r.hung_workers_killed, r.pings,
            r.drain_requested ? " drain_requested" : "");
        return 0;
    } catch (const SimError &e) {
        std::fprintf(stderr, "campaignd: [%s] %s\n",
                     e.kind().c_str(), e.what());
        return 2;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string campaign = "smoke";
    std::string chaos;
    std::string serve_socket;
    bool serve = false;
    long long cycles = 20000;
    CampaignOptions opts;
    ServiceOptions sopts;

    bool resume = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--campaign" && has_value) {
            campaign = argv[++i];
        } else if (arg == "--serve" && has_value) {
            serve = true;
            serve_socket = argv[++i];
        } else if (arg == "--cycles" && has_value) {
            if (!parseLong(argv[++i], cycles) || cycles <= 0) {
                std::fprintf(stderr,
                             "--cycles wants a positive count\n");
                usage();
                return 2;
            }
        } else if (arg == "--workers" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1 || v > 256) {
                std::fprintf(
                    stderr,
                    "--workers wants a count in [1, 256]\n");
                usage();
                return 2;
            }
            opts.workers = static_cast<int>(v);
            sopts.workers = static_cast<int>(v);
        } else if (arg == "--journal" && has_value) {
            opts.journal_base = argv[++i];
            sopts.journal_base = opts.journal_base;
        } else if (arg == "--resume") {
            resume = true;
            sopts.resume = true;
        } else if (arg == "--in-process") {
            opts.force_in_process = true;
        } else if (arg == "--chaos" && has_value) {
            chaos = argv[++i];
        } else if (arg == "--heartbeat-ms" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                std::fprintf(
                    stderr,
                    "--heartbeat-ms wants a positive count\n");
                usage();
                return 2;
            }
            opts.heartbeat_ms = static_cast<std::uint64_t>(v);
            sopts.heartbeat_ms = opts.heartbeat_ms;
        } else if (arg == "--liveness-ms" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                std::fprintf(
                    stderr,
                    "--liveness-ms wants a positive count\n");
                usage();
                return 2;
            }
            opts.liveness_deadline_ms =
                static_cast<std::uint64_t>(v);
            sopts.liveness_deadline_ms = opts.liveness_deadline_ms;
        } else if (arg == "--max-attempts" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                std::fprintf(
                    stderr,
                    "--max-attempts wants a positive count\n");
                usage();
                return 2;
            }
            opts.max_dispatch_attempts = static_cast<int>(v);
            sopts.max_dispatch_attempts = static_cast<int>(v);
        } else if (arg == "--poison-deaths" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                std::fprintf(
                    stderr,
                    "--poison-deaths wants a positive count\n");
                usage();
                return 2;
            }
            opts.poison_worker_deaths = static_cast<int>(v);
        } else if (arg == "--max-pending-jobs" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                std::fprintf(
                    stderr,
                    "--max-pending-jobs wants a positive count\n");
                usage();
                return 2;
            }
            sopts.max_pending_jobs = static_cast<std::size_t>(v);
        } else if (arg == "--max-client-campaigns" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                std::fprintf(stderr,
                             "--max-client-campaigns wants a "
                             "positive count\n");
                usage();
                return 2;
            }
            sopts.max_client_campaigns =
                static_cast<std::size_t>(v);
        } else if (arg == "--idle-timeout-ms" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 0) {
                std::fprintf(stderr,
                             "--idle-timeout-ms wants a count >= 0 "
                             "(0 disables)\n");
                usage();
                return 2;
            }
            sopts.idle_timeout_ms = static_cast<std::uint64_t>(v);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--campaign" || arg == "--serve" ||
                   arg == "--cycles" || arg == "--workers" ||
                   arg == "--journal" || arg == "--chaos" ||
                   arg == "--heartbeat-ms" ||
                   arg == "--liveness-ms" ||
                   arg == "--max-attempts" ||
                   arg == "--poison-deaths" ||
                   arg == "--max-pending-jobs" ||
                   arg == "--max-client-campaigns" ||
                   arg == "--idle-timeout-ms") {
            std::fprintf(stderr, "missing value for %s\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }

    if (!chaos.empty()) {
        if (serve) {
            std::fprintf(stderr,
                         "--chaos applies to batch mode only "
                         "(service chaos is client-driven)\n");
            usage();
            return 2;
        }
        if (chaos == "kill-worker") {
            // SIGKILL the worker on every job's FIRST dispatch
            // attempt; re-dispatches (attempt >= 1) run clean. The
            // terminal states — and therefore the stdout table —
            // match an unharassed run exactly.
            ProcFaultSpec spec;
            spec.kind = ProcFaultKind::KillWorkerMidJob;
            spec.attempts = 1;
            opts.faults = ProcFaultPlan({spec});
        } else {
            std::fprintf(stderr,
                         "unknown chaos mode '%s' (try: "
                         "kill-worker)\n",
                         chaos.c_str());
            return 2;
        }
    }

    if (serve) {
        sopts.socket_path = serve_socket;
        return runService(sopts);
    }

    if (!knownCampaign(campaign)) {
        usage();
        return 2;
    }

    if (!resume && !opts.journal_base.empty()) {
        // Fresh campaign: drop stale shards and the merged journal so
        // the run cannot be satisfied by a previous campaign's
        // results.
        for (int slot = 0; slot < 256; ++slot) {
            const std::string p =
                CampaignEngine::shardPath(opts.journal_base, slot);
            if (::unlink(p.c_str()) != 0)
                break;
        }
        (void)::unlink(
            CampaignEngine::mergedPath(opts.journal_base).c_str());
    }

    try {
        const std::vector<SimJob> jobs =
            buildNamedCampaign(campaign, Cycle{
                static_cast<std::uint64_t>(cycles)});

        CampaignEngine engine(opts);
        g_engine = &engine;
        struct sigaction sa;
        std::memset(&sa, 0, sizeof sa);
        sa.sa_handler = onDrainSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);

        const CampaignOutcome outcome = engine.run(jobs);
        g_engine = nullptr;

        // ---- diff-stable table (stdout) ----------------------------
        std::fputs(
            formatCampaignTable(campaign,
                                static_cast<std::uint64_t>(cycles),
                                jobs, outcome.jobs)
                .c_str(),
            stdout);

        // ---- fleet accounting (stderr) -----------------------------
        const CampaignReport &r = outcome.report;
        std::fprintf(
            stderr,
            "workers=%d%s completed=%" PRIu64 " journal_hits=%" PRIu64
            " dispatched=%" PRIu64 " redispatched=%" PRIu64 "\n"
            "worker_deaths=%" PRIu64 " respawned=%" PRIu64
            " hung_killed=%" PRIu64 " corrupt_frames=%" PRIu64
            " heartbeats=%" PRIu64 "\n"
            "poisoned=%" PRIu64 " failed=%" PRIu64 " drained=%" PRIu64
            "%s%s\n",
            opts.workers,
            r.degraded_in_process ? " (degraded in-process)" : "",
            r.completed, r.journal_hits, r.dispatched,
            r.redispatched, r.worker_deaths, r.workers_respawned,
            r.hung_workers_killed, r.corrupt_frames, r.heartbeats,
            r.poisoned, r.failed, r.drained,
            r.drain_requested ? " drain_requested" : "",
            outcome.allCompleted() ? " ALL-COMPLETED" : "");

        if (outcome.allCompleted())
            return 0;
        if (r.drain_requested && r.poisoned == 0 && r.failed == 0)
            return 3;
        return 1;
    } catch (const SimError &e) {
        std::fprintf(stderr, "campaignd: [%s] %s\n",
                     e.kind().c_str(), e.what());
        return 2;
    }
}
