/**
 * @file
 * ckesim-campaign-client: submit a named campaign to a running
 * `ckesim-campaignd --serve` daemon and stream the results back.
 *
 * Output contract: stdout carries ONLY the diff-stable result table
 * (the shared formatCampaignTable — byte-identical to the table
 * ckesim-campaignd prints for the same campaign, whether the jobs
 * ran here, on another client's submission, or were replayed from
 * the service journal). Client accounting goes to stderr.
 *
 * Usage:
 *   ckesim-campaign-client --socket PATH [--campaign smoke]
 *                          [--cycles N] [--timeout-ms N]
 *                          [--retries N] [--backoff-ms N]
 *                          [--chaos-drop-after N]
 *                          [--chaos-corrupt-submit]
 *
 *   --chaos-drop-after N    abruptly close the socket after N
 *                           streamed results (client-death chaos)
 *   --chaos-corrupt-submit  flip a byte in the submission frame
 *                           (the service must drop this client only)
 *
 * Exit codes: 0 = campaign completed, 1 = job failures, 2 = usage
 * error, 3 = rejected (retries exhausted or permanent), 4 =
 * connection lost / protocol error.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/client.hpp"
#include "sim/check.hpp"

namespace {

using namespace ckesim;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: ckesim-campaign-client --socket PATH "
        "[--campaign smoke|pairs] [--cycles N]\n"
        "                              [--timeout-ms N] "
        "[--retries N] [--backoff-ms N]\n"
        "                              [--chaos-drop-after N] "
        "[--chaos-corrupt-submit]\n");
}

bool
parseLong(const char *s, long long &out)
{
    char *end = nullptr;
    out = std::strtoll(s, &end, 10);
    return end != nullptr && *end == '\0' && end != s;
}

} // namespace

int
main(int argc, char **argv)
{
    ClientOptions opts;
    opts.ref.name = "smoke";
    opts.ref.cycles = 20000;
    std::vector<ProcFaultSpec> chaos;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (arg == "--socket" && has_value) {
            opts.socket_path = argv[++i];
        } else if (arg == "--campaign" && has_value) {
            opts.ref.name = argv[++i];
        } else if (arg == "--cycles" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v <= 0) {
                std::fprintf(stderr,
                             "--cycles wants a positive count\n");
                usage();
                return 2;
            }
            opts.ref.cycles = static_cast<std::uint64_t>(v);
        } else if (arg == "--timeout-ms" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                std::fprintf(stderr,
                             "--timeout-ms wants a positive count\n");
                usage();
                return 2;
            }
            opts.timeout_ms = static_cast<std::uint64_t>(v);
        } else if (arg == "--retries" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 0) {
                std::fprintf(stderr,
                             "--retries wants a count >= 0\n");
                usage();
                return 2;
            }
            opts.retries = static_cast<int>(v);
        } else if (arg == "--backoff-ms" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 0) {
                std::fprintf(stderr,
                             "--backoff-ms wants a count >= 0\n");
                usage();
                return 2;
            }
            opts.backoff_ms = static_cast<std::uint64_t>(v);
        } else if (arg == "--chaos-drop-after" && has_value) {
            long long v = 0;
            if (!parseLong(argv[++i], v) || v < 1) {
                std::fprintf(
                    stderr,
                    "--chaos-drop-after wants a result count\n");
                usage();
                return 2;
            }
            ProcFaultSpec spec;
            spec.kind = ProcFaultKind::DropClientMidStream;
            spec.job_index = static_cast<int>(v);
            spec.budget = 1;
            chaos.push_back(spec);
        } else if (arg == "--chaos-corrupt-submit") {
            ProcFaultSpec spec;
            spec.kind = ProcFaultKind::CorruptClientFrame;
            spec.budget = 1;
            chaos.push_back(spec);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--socket" || arg == "--campaign" ||
                   arg == "--cycles" || arg == "--timeout-ms" ||
                   arg == "--retries" || arg == "--backoff-ms" ||
                   arg == "--chaos-drop-after") {
            std::fprintf(stderr, "missing value for %s\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        }
    }
    if (opts.socket_path.empty()) {
        std::fprintf(stderr, "--socket is required\n");
        usage();
        return 2;
    }
    if (!chaos.empty())
        opts.faults = ProcFaultPlan(chaos);

    try {
        const ClientOutcome outcome = runCampaignClient(opts);

        // ---- diff-stable table (stdout) ----------------------------
        // Printed for every terminal status so a partial stream (a
        // chaos drop) is still inspectable; only a completed
        // campaign's table is byte-comparable.
        std::fputs(formatCampaignTable(opts.ref.name,
                                       opts.ref.cycles, outcome.jobs,
                                       outcome.outcomes)
                       .c_str(),
                   stdout);

        // ---- client accounting (stderr) ----------------------------
        const ClientReport &r = outcome.report;
        std::fprintf(stderr,
                     "status=%s attempts=%d results=%" PRIu64
                     " replayed=%" PRIu64 " failures=%" PRIu64
                     " rejects=%" PRIu64 "%s%s\n",
                     clientStatusName(outcome.status), r.attempts,
                     r.results, r.replayed, r.failures, r.rejects,
                     r.error.empty() ? "" : " error=",
                     r.error.c_str());

        switch (outcome.status) {
          case ClientStatus::Completed:
            return 0;
          case ClientStatus::JobFailures:
            return 1;
          case ClientStatus::Rejected:
            return 3;
          case ClientStatus::ConnectionLost:
          case ClientStatus::ProtocolError:
            return 4;
        }
        return 4;
    } catch (const SimError &e) {
        std::fprintf(stderr, "campaign-client: [%s] %s\n",
                     e.kind().c_str(), e.what());
        return 2;
    }
}
