/**
 * @file
 * Replay-divergence detector: proves Gpu::restore(Gpu::snapshot(t))
 * followed by run(total - t) is bit-identical to running straight
 * through, for several scheme configurations and randomized
 * mid-run kill points, with and without injected pipeline faults.
 *
 * This is the end-to-end guarantee the crash-safety layer rests on:
 * if replay from a checkpoint can diverge, a resumed sweep's numbers
 * cannot be trusted. The tool exits non-zero (and prints the first
 * mismatching fingerprint pair) on any divergence; CI runs it as the
 * `replay_divergence` ctest target.
 *
 * Usage: replay_divergence [--trials N] [--seed S] [--fast]
 *
 * --fast runs every machine with the event-driven fast path
 * (Gpu::setFastForward); results must stay bit-identical to strict
 * stepping, so CI diffs strict vs --fast stdout. Faulted cases fall
 * back to strict stepping internally (the fast path disarms itself
 * while a fault injector is loaded).
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "gpu.hpp"
#include "kernels/workload.hpp"
#include "sim/config.hpp"
#include "sim/rng.hpp"

namespace {

using namespace ckesim;

/** --fast: run every machine with event-driven cycle skipping. */
bool g_fast = false;

/** Everything two equivalent runs must agree on, bit for bit. */
struct Outcome
{
    std::uint64_t fingerprint = 0;
    std::uint64_t cycle = 0;
    std::vector<double> ipc;
};

Outcome
outcomeOf(const Gpu &gpu)
{
    Outcome out;
    const GpuSnapshot snap = gpu.snapshot();
    out.fingerprint = snap.fingerprint;
    out.cycle = snap.cycle.get();
    for (int k = 0; k < gpu.numKernels(); ++k)
        out.ipc.push_back(gpu.ipc(KernelId{k}));
    return out;
}

bool
sameOutcome(const Outcome &a, const Outcome &b, std::string &why)
{
    if (a.fingerprint != b.fingerprint) {
        why = "state fingerprint mismatch";
        return false;
    }
    if (a.cycle != b.cycle) {
        why = "final cycle mismatch";
        return false;
    }
    if (a.ipc.size() != b.ipc.size()) {
        why = "kernel count mismatch";
        return false;
    }
    for (std::size_t k = 0; k < a.ipc.size(); ++k)
        if (std::memcmp(&a.ipc[k], &b.ipc[k], sizeof(double)) != 0) {
            why = "ipc[" + std::to_string(k) + "] differs";
            return false;
        }
    return true;
}

/** One scheme configuration under test. */
struct CaseSpec
{
    std::string name;
    SchemeSpec spec;
    std::uint64_t total_cycles = 0;
};

/**
 * Straight run with a manual checkpoint at @p kill, then a fresh Gpu
 * restored from that checkpoint and run to the end. Returns true when
 * both machines finish bit-identical.
 */
bool
replayTrial(const GpuConfig &cfg, const Workload &wl,
            const CaseSpec &cs, std::uint64_t kill)
{
    Gpu straight(cfg, wl, cs.spec);
    straight.setFastForward(g_fast);
    straight.run(Cycle{kill});
    const GpuSnapshot ckpt = straight.snapshot();
    straight.run(Cycle{cs.total_cycles - kill});
    const Outcome want = outcomeOf(straight);

    Gpu resumed(cfg, wl, cs.spec);
    resumed.setFastForward(g_fast);
    resumed.restore(ckpt);
    resumed.run(Cycle{cs.total_cycles - kill});
    const Outcome got = outcomeOf(resumed);

    std::string why;
    if (sameOutcome(want, got, why)) {
        std::printf("  PASS %-14s kill=%-7" PRIu64
                    " fp=%016" PRIx64 "\n",
                    cs.name.c_str(), kill, want.fingerprint);
        return true;
    }
    std::printf("  FAIL %-14s kill=%-7" PRIu64 " %s\n"
                "       straight fp=%016" PRIx64 " cycle=%" PRIu64
                "\n"
                "       resumed  fp=%016" PRIx64 " cycle=%" PRIu64
                "\n",
                cs.name.c_str(), kill, why.c_str(), want.fingerprint,
                want.cycle, got.fingerprint, got.cycle);
    return false;
}

/**
 * Soak the automatic checkpoint path: run with
 * integrity.checkpoint_interval armed (a "kill -9" can then only lose
 * work back to the last interval boundary), resume a fresh machine
 * from lastCheckpoint(), and demand the same final state as a run
 * with checkpointing disabled — proving auto-checkpointing observes
 * without perturbing.
 */
bool
autoCheckpointTrial(const GpuConfig &cfg, const Workload &wl,
                    const CaseSpec &cs, int interval)
{
    Gpu plain(cfg, wl, cs.spec);
    plain.setFastForward(g_fast);
    plain.run(Cycle{cs.total_cycles});
    const Outcome want = outcomeOf(plain);

    GpuConfig ckpt_cfg = cfg;
    ckpt_cfg.integrity.checkpoint_interval = interval;
    Gpu observed(ckpt_cfg, wl, cs.spec);
    observed.setFastForward(g_fast);
    observed.run(Cycle{cs.total_cycles});
    const Outcome with_ckpt = outcomeOf(observed);

    std::string why;
    if (!sameOutcome(want, with_ckpt, why)) {
        std::printf("  FAIL %-14s auto-checkpointing perturbed the "
                    "run: %s\n",
                    cs.name.c_str(), why.c_str());
        return false;
    }

    const GpuSnapshot *last = observed.lastCheckpoint();
    if (last == nullptr) {
        std::printf("  FAIL %-14s no auto-checkpoint taken "
                    "(interval=%d)\n",
                    cs.name.c_str(), interval);
        return false;
    }

    Gpu resumed(ckpt_cfg, wl, cs.spec);
    resumed.setFastForward(g_fast);
    resumed.restore(*last);
    resumed.run(Cycle{cs.total_cycles - last->cycle.get()});
    const Outcome got = outcomeOf(resumed);

    if (sameOutcome(want, got, why)) {
        std::printf("  PASS %-14s auto-ckpt@%-7" PRIu64
                    " fp=%016" PRIx64 "\n",
                    cs.name.c_str(), last->cycle.get(),
                    want.fingerprint);
        return true;
    }
    std::printf("  FAIL %-14s resume from auto-ckpt@%" PRIu64
                ": %s\n",
                cs.name.c_str(), last->cycle.get(), why.c_str());
    return false;
}

std::vector<CaseSpec>
buildCases()
{
    std::vector<CaseSpec> cases;

    // The three scheme families the paper evaluates: SMK's DRF
    // partition, dynamic Warped-Slicer (checkpoints must survive the
    // profiling-phase boundary), and the full QBMI+DMIL mechanism.
    {
        CaseSpec cs;
        cs.name = "smk";
        cs.spec = makeScheme(PartitionScheme::SmkDrf, BmiMode::None,
                             MilMode::None);
        cs.total_cycles = 12000;
        cases.push_back(cs);
    }
    {
        CaseSpec cs;
        cs.name = "ws";
        cs.spec = makeScheme(PartitionScheme::WarpedSlicer,
                             BmiMode::None, MilMode::None);
        cs.spec.ws_profile_window = Cycle{5000};
        cs.total_cycles = 14000;
        cases.push_back(cs);
    }
    {
        CaseSpec cs;
        cs.name = "qbmi-dmil";
        cs.spec = makeScheme(PartitionScheme::WarpedSlicer,
                             BmiMode::QBMI, MilMode::Dynamic);
        cs.spec.ws_profile_window = Cycle{5000};
        cs.total_cycles = 14000;
        cases.push_back(cs);
    }

    // Fault-injection soak: replay must stay exact even while the
    // pipeline is being actively degraded (fill delays, forced
    // reservation failures, a frozen DRAM channel), because the
    // injector's budgets are part of the snapshot.
    {
        CaseSpec cs;
        cs.name = "qbmi-faulted";
        cs.spec = makeScheme(PartitionScheme::WarpedSlicer,
                             BmiMode::QBMI, MilMode::Dynamic);
        cs.spec.ws_profile_window = Cycle{5000};
        FaultSpec delay;
        delay.kind = FaultKind::DelayFill;
        delay.begin = Cycle{2000};
        delay.end = Cycle{9000};
        delay.budget = 64;
        delay.delay = Cycle{150};
        cs.spec.faults.push_back(delay);
        FaultSpec rsfail;
        rsfail.kind = FaultKind::ForceRsFail;
        rsfail.begin = Cycle{4000};
        rsfail.end = Cycle{6000};
        rsfail.budget = 128;
        cs.spec.faults.push_back(rsfail);
        cs.total_cycles = 14000;
        cases.push_back(cs);
    }
    {
        CaseSpec cs;
        cs.name = "smk-faulted";
        cs.spec = makeScheme(PartitionScheme::SmkDrf, BmiMode::None,
                             MilMode::None);
        FaultSpec freeze;
        freeze.kind = FaultKind::FreezeDram;
        freeze.begin = Cycle{3000};
        freeze.end = Cycle{5000};
        freeze.target = 0;
        cs.spec.faults.push_back(freeze);
        cs.total_cycles = 12000;
        cases.push_back(cs);
    }
    return cases;
}

} // namespace

int
main(int argc, char **argv)
{
    int trials = 3;
    std::uint64_t seed = 0x7265706c6179ULL; // "replay", fixed default
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc)
            trials = std::atoi(argv[++i]);
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = static_cast<std::uint64_t>(
                std::strtoull(argv[++i], nullptr, 0));
        else if (std::strcmp(argv[i], "--fast") == 0)
            g_fast = true;
        else {
            std::fprintf(stderr,
                         "usage: %s [--trials N] [--seed S] "
                         "[--fast]\n",
                         argv[0]);
            return 2;
        }
    }

    const GpuConfig cfg = makeSmallConfig(4, 4);
    const Workload wl = makeWorkload({"bp", "sv"});
    Rng rng(seed);

    int failures = 0;
    for (const CaseSpec &cs : buildCases()) {
        std::printf("case %s (%d kill points + auto-checkpoint):\n",
                    cs.name.c_str(), trials);
        for (int t = 0; t < trials; ++t) {
            // Kill somewhere in the middle half of the run, so every
            // phase boundary (profiling end, fault windows) gets
            // straddled across trials.
            const std::uint64_t lo = cs.total_cycles / 4;
            const std::uint64_t span = cs.total_cycles / 2;
            const std::uint64_t kill = lo + rng.nextBelow(span);
            if (!replayTrial(cfg, wl, cs, kill))
                ++failures;
        }
        const int interval = static_cast<int>(cs.total_cycles / 3);
        if (!autoCheckpointTrial(cfg, wl, cs, interval))
            ++failures;
    }

    if (failures > 0) {
        std::printf("replay divergence detected in %d trial(s)\n",
                    failures);
        return 1;
    }
    std::printf("all replay trials bit-identical\n");
    return 0;
}
