/**
 * @file
 * journal_fsck: standalone integrity checker for result journals and
 * campaign shard sets. Walks every record of every named file,
 * validating magic, format version, payload CRC32 and SimResult
 * decodability, and distinguishes a benign torn tail (a crash cut an
 * append short — expected wear under the kill-soak) from hard
 * corruption (flipped bits, foreign files, undecodable payloads).
 *
 * Usage:
 *   journal_fsck [options] <journal>...
 *   journal_fsck [options] --shards <base>
 *
 *   --shards <base>  check <base>.shard0..N and <base>.merged
 *                    (whichever of them exist)
 *   --strict         treat torn tails as failures too
 *   --quiet          summary lines only, no per-record detail
 *
 * Exit codes: 0 = every file clean, 1 = hard corruption (or any torn
 * tail under --strict), 2 = usage / unreadable file.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/campaign_engine.hpp"
#include "metrics/journal.hpp"
#include "sim/check.hpp"

namespace {

using namespace ckesim;

/** Largest shard slot probed by --shards. */
constexpr int kMaxShards = 256;

void
usage()
{
    std::fprintf(
        stderr,
        "usage: journal_fsck [--strict] [--quiet] <journal>...\n"
        "       journal_fsck [--strict] [--quiet] --shards <base>\n");
}

void
printRecord(const JournalFsckRecord &rec)
{
    std::printf("  @%-10" PRIu64 " key=%016" PRIx64
                " len=%-8" PRIu32 " %s%s%s\n",
                rec.offset, rec.key, rec.payload_len,
                journalRecordStatusName(rec.status),
                rec.detail.empty() ? "" : ": ",
                rec.detail.c_str());
}

/** Check one file; returns true when it is acceptable. */
bool
checkFile(const std::string &path, bool strict, bool quiet)
{
    JournalFsckReport report;
    try {
        report = fsckJournal(path);
    } catch (const SimError &e) {
        std::printf("%s: UNREADABLE (%s)\n", path.c_str(), e.what());
        return false;
    }
    const bool torn = report.torn_bytes > 0;
    const bool ok = report.clean() && !(strict && torn);

    std::printf("%s: %s — %" PRIu64 " record(s), %" PRIu64
                " distinct key(s), %" PRIu64 " byte(s)%s\n",
                path.c_str(),
                ok ? (torn ? "CLEAN (torn tail)" : "CLEAN")
                   : "CORRUPT",
                report.ok_records, report.distinct_keys,
                report.file_bytes,
                torn ? (", torn tail of " +
                        std::to_string(report.torn_bytes) +
                        " byte(s)")
                           .c_str()
                     : "");
    if (!quiet)
        for (const JournalFsckRecord &rec : report.records)
            if (rec.status != JournalRecordStatus::Ok || !ok)
                printRecord(rec);
    return ok;
}

} // namespace

int
main(int argc, char **argv)
{
    bool strict = false;
    bool quiet = false;
    std::string shards_base;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--strict") {
            strict = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--shards") {
            if (i + 1 >= argc) {
                usage();
                return 2;
            }
            shards_base = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage();
            return 2;
        } else {
            paths.push_back(arg);
        }
    }

    if (!shards_base.empty()) {
        for (int slot = 0; slot < kMaxShards; ++slot) {
            const std::string p =
                CampaignEngine::shardPath(shards_base, slot);
            if (::access(p.c_str(), F_OK) != 0)
                break;
            paths.push_back(p);
        }
        const std::string merged =
            CampaignEngine::mergedPath(shards_base);
        if (::access(merged.c_str(), F_OK) == 0)
            paths.push_back(merged);
        if (paths.empty()) {
            std::fprintf(stderr,
                         "--shards %s: no shard or merged journal "
                         "found\n",
                         shards_base.c_str());
            return 2;
        }
    }
    if (paths.empty()) {
        usage();
        return 2;
    }

    bool all_ok = true;
    for (const std::string &path : paths)
        if (!checkFile(path, strict, quiet))
            all_ok = false;
    return all_ok ? 0 : 1;
}
