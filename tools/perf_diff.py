#!/usr/bin/env python3
"""Compare two BENCH_perf.json artifacts and flag perf regressions.

Intended for the CI perf-smoke job: run bench_perf on the PR build,
then diff the fresh artifact against the committed baseline:

    python3 tools/perf_diff.py BENCH_perf.json fresh.json

Comparisons (ratio = fresh / baseline; higher is faster):

  strict_busy   cycles_per_sec per scheme — the strict per-cycle cost
                gate (DESIGN.md §14).
  sim_speed     strict_cycles_per_sec and fast_cycles_per_sec per
                (sms, workload, scheme) case. A fresh case with
                bit_identical=false is always an error: a fast number
                from a divergent run is meaningless.

--only restricts the comparison to one section, so CI can gate the
sections differently: strict_busy measures a tight, repeat-averaged
single-process loop that is stable enough on shared runners to be a
HARD error gate at --tolerance 0.90 (a >10% cycles/sec regression
fails the job), while sim_speed stays warn-only (wall-clock of full
sweeps is far noisier).

Exit status: 0 clean, 1 if any ratio falls below --tolerance or a
fresh case diverged, 2 on unreadable/mismatched artifacts.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"perf_diff: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def busy_cases(doc):
    out = {}
    for c in doc.get("strict_busy", {}).get("cases", []):
        out[c["scheme"]] = c
    return out


def speed_cases(doc):
    out = {}
    for c in doc.get("sim_speed", {}).get("cases", []):
        out[(c["sms"], c["workload"], c["scheme"])] = c
    return out


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="committed BENCH_perf.json")
    ap.add_argument("fresh", help="artifact from the current build")
    ap.add_argument(
        "--tolerance", type=float, default=0.70,
        help="minimum fresh/baseline throughput ratio before a case "
             "counts as a regression (default %(default)s — shared "
             "CI runners are noisy)")
    ap.add_argument(
        "--only", choices=("strict_busy", "sim_speed"),
        help="compare just this section (lets CI gate strict_busy "
             "as a hard error while sim_speed stays warn-only)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = load(args.fresh)

    findings = []
    compared = 0

    fb = busy_cases(fresh) if args.only != "sim_speed" else {}
    base_busy = (busy_cases(base)
                 if args.only != "sim_speed" else {})
    for scheme, bc in sorted(base_busy.items()):
        fc = fb.get(scheme)
        if fc is None:
            findings.append(
                f"strict_busy {scheme}: case missing from fresh "
                "artifact")
            continue
        ratio = fc["cycles_per_sec"] / bc["cycles_per_sec"]
        compared += 1
        marker = "  REGRESSION" if ratio < args.tolerance else ""
        print(f"strict_busy {scheme:<14} base "
              f"{bc['cycles_per_sec']:>9.0f} cyc/s  fresh "
              f"{fc['cycles_per_sec']:>9.0f} cyc/s  "
              f"{ratio:5.2f}x{marker}")
        if ratio < args.tolerance:
            findings.append(
                f"strict_busy {scheme}: {ratio:.2f}x of baseline "
                f"(tolerance {args.tolerance:.2f})")

    fs = speed_cases(fresh) if args.only != "strict_busy" else {}
    base_speed = (speed_cases(base)
                  if args.only != "strict_busy" else {})
    for key, bc in sorted(base_speed.items()):
        fc = fs.get(key)
        if fc is None:
            findings.append(
                f"sim_speed {key}: case missing from fresh artifact")
            continue
        compared += 1
        if not fc.get("bit_identical", True):
            findings.append(
                f"sim_speed {key}: fast path DIVERGED in fresh run")
        for field in ("strict_cycles_per_sec", "fast_cycles_per_sec"):
            ratio = fc[field] / bc[field]
            if ratio < args.tolerance:
                findings.append(
                    f"sim_speed {key} {field}: {ratio:.2f}x of "
                    f"baseline (tolerance {args.tolerance:.2f})")

    if compared == 0:
        # Legacy baseline without comparable sections: nothing to
        # gate, but say so instead of printing a silently-empty diff.
        print("perf_diff: no comparable cases between the artifacts "
              "(legacy baseline format?)")
        return 0

    if findings:
        print(f"perf_diff: {len(findings)} finding(s):",
              file=sys.stderr)
        for f in findings:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"perf_diff: {compared} case(s) within tolerance "
          f"{args.tolerance:.2f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
