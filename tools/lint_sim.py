#!/usr/bin/env python3
"""Simulator-specific lint pass for ckesim.

Enforces repo rules that clang-tidy cannot express:

  determinism     No ad-hoc randomness or wall-clock reads in src/.
                  All randomness flows through the seeded counter RNG
                  in src/sim/rng.hpp so runs are bit-reproducible.
  bare-assert     No <cassert>/assert() in src/. Simulation invariants
                  use SIM_CHECK/SIM_INVARIANT (sim/check.hpp), which
                  survive NDEBUG and report cycle/SM context.
  stdio           No std::cout/std::cerr in src/, and no printf-family
                  writes to stdout outside files that declare a
                  `// LINT-ALLOW(stdio): <reason>` marker (the metrics
                  reporting layer). fprintf to an explicit FILE* or to
                  stderr is fine.
  include-guard   src/ headers use #ifndef CKESIM_<PATH>_HPP derived
                  from the header's path under src/.
  int-id-param    Public headers must not declare `int`/`unsigned`
                  parameters named *_id or *_slot — those are exactly
                  the values the strong types in sim/types.hpp exist
                  for (KernelId, SmId, WarpSlot).
  nolint-reason   Every NOLINT must name a check and carry a reason:
                  `NOLINT(check-name): why`. Bare suppressions rot.
  snapshot-coverage
                  In any header declaring both snapshot(SnapshotWriter&)
                  and restore(SnapshotReader&) (or the Gpu-level
                  GpuSnapshot pair), every `name_` data member must be
                  mentioned in the snapshot/restore bodies (header or
                  sibling .cpp) or carry an explicit
                  `// SNAPSHOT-SKIP(reason)` waiver on its declaration
                  line. A silently-forgotten field is the snapshot
                  layer's worst failure mode: replay diverges with no
                  error.
  fastpath-coverage
                  Any class declaring a `tick(Cycle ...)` member must
                  also declare `nextEventCycle(` (the Clockable
                  horizon, sim/clockable.hpp) or carry a
                  `// FASTPATH-SKIP(reason)` waiver inside the class
                  body. A ticked component invisible to the fast
                  path's skip decision silently breaks strict-vs-fast
                  bit-identity.
  hotpath         No std::deque/std::map/std::unordered_map in the
                  per-cycle simulation paths (src/mem/, src/sm/,
                  src/gpu.*). The strict path walks these structures
                  every cycle; node-based containers cost a cache miss
                  per element (DESIGN.md §14). Use RingBuf
                  (sim/ringbuf.hpp), MshrTable's flat table, or a
                  sorted vector. Waive cold-path uses with a
                  `// HOTPATH-ALLOW(reason)` on the same or preceding
                  line.

  unused-waiver   A waiver that suppresses nothing is rot: it either
                  outlived the code it excused or never matched in the
                  first place, and it trains readers to ignore
                  markers. LINT-ALLOW and HOTPATH-ALLOW must have
                  actually suppressed a finding this run.
                  SNAPSHOT-SKIP must sit on (or within three lines
                  above) a data-member declaration in a header that
                  declares the snapshot pair; FASTPATH-SKIP must sit
                  in the body of a class that declares tick(Cycle ...)
                  and lacks nextEventCycle(). The literal placeholder
                  spelling `(reason)` is documentation, not a waiver.

Any rule can be waived on a specific line with
`// LINT-ALLOW(<rule>): <reason>`; the reason is mandatory
(snapshot-coverage uses `// SNAPSHOT-SKIP(reason)` instead, so the
waiver doubles as documentation of why the field is not state).

Usage: python3 tools/lint_sim.py [--root DIR]
Exit status 0 if clean, 1 with findings on stderr otherwise.
"""

import argparse
import os
import re
import sys

RNG_FILES = {os.path.join("src", "sim", "rng.hpp")}

DETERMINISM_PATTERNS = [
    (re.compile(r"\b(?:std::)?s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bmt19937(?:_64)?\b"), "std::mt19937"),
    (re.compile(r"\bdefault_random_engine\b"),
     "std::default_random_engine"),
    (re.compile(r"\buniform_(?:int|real)_distribution\b"),
     "<random> distribution"),
    (re.compile(r"\b(?:system|steady|high_resolution)_clock\b"),
     "std::chrono clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\btime\s*\(\s*(?:NULL|nullptr|0)\s*\)"),
     "time()"),
    (re.compile(r"\bclock\s*\(\s*\)"), "clock()"),
]

ASSERT_PATTERNS = [
    (re.compile(r"^\s*#\s*include\s*<cassert>"), "#include <cassert>"),
    (re.compile(r"(?<![_\w])assert\s*\("), "bare assert()"),
]

STDIO_ALWAYS = [
    (re.compile(r"\bstd::cout\b"), "std::cout"),
    (re.compile(r"\bstd::cerr\b"), "std::cerr"),
]
# printf-family calls that write to stdout. fprintf with an explicit
# stream is matched separately so fprintf(stderr, ...) stays legal.
STDOUT_PRINTF = [
    (re.compile(r"(?<![\w:])(?:std::)?printf\s*\("), "printf()"),
    (re.compile(r"(?<![\w:])(?:std::)?puts\s*\("), "puts()"),
    (re.compile(r"(?<![\w:])(?:std::)?putchar\s*\("), "putchar()"),
    (re.compile(r"(?<![\w:])(?:std::)?v?fprintf\s*\(\s*stdout\b"),
     "fprintf(stdout)"),
]

ID_PARAM = re.compile(
    r"\b(?:unsigned\s+int|unsigned|int|long|short|size_t|std::size_t"
    r"|(?:std::)?u?int(?:8|16|32|64)_t)\s+"
    r"(\w*_(?:id|slot))\b")

NOLINT = re.compile(r"NOLINT(?:NEXTLINE|BEGIN|END)?\b")
NOLINT_OK = re.compile(
    r"NOLINT(?:NEXTLINE|BEGIN|END)?\([\w.,\- ]+\)\s*:\s*\S")

LINT_ALLOW = re.compile(r"LINT-ALLOW\((?P<rule>[\w-]+)\)\s*:\s*\S")

# ---- snapshot-coverage rule ------------------------------------------
# A header participates when it declares the member-function pair.
SNAPSHOT_DECL = re.compile(
    r"\bsnapshot\s*\(\s*SnapshotWriter|\bGpuSnapshot\s+snapshot\s*\(")
RESTORE_DECL = re.compile(
    r"\brestore\s*\(\s*SnapshotReader|"
    r"\brestore\s*\(\s*const\s+GpuSnapshot")
# Any function whose name mentions snapshot/restore (members, free
# helpers like snapshotWarp) with a following body; `;` excluded so
# pure declarations never match.
SNAPSHOT_FN_OPEN = re.compile(
    r"\b\w*(?:snapshot|restore|Snapshot|Restore)\w*"
    r"\s*\([^)]*\)[^{};]*\{")
# A data-member declaration: type tokens, then a `name_` identifier,
# then ;/=/{ (optionally through an array extent). Assignments like
# `cursor_ = 0;` do not match (no preceding type token).
MEMBER_DECL = re.compile(
    r"^\s*(?:mutable\s+|static\s+|constexpr\s+|inline\s+)*"
    r"(?!return\b|throw\b|delete\b|new\b|case\b|goto\b)"
    r"[A-Za-z_][\w:]*(?:\s*<[^;]*>)?[\s&*]+"
    r"([A-Za-z]\w*_)\s*(?:\[[^\]]*\]\s*)?(?:;|=|\{)")
SNAPSHOT_SKIP = re.compile(r"SNAPSHOT-SKIP\([^)]*\S[^)]*\)")

# ---- hotpath rule ----------------------------------------------------
# Per-cycle simulation paths where node-based containers are banned.
HOTPATH_DIRS = (
    os.path.join("src", "mem") + os.sep,
    os.path.join("src", "sm") + os.sep,
)
HOTPATH_FILES = {
    os.path.join("src", "gpu.hpp"),
    os.path.join("src", "gpu.cpp"),
}
HOTPATH_CONTAINER = re.compile(
    r"\bstd::(?:deque|map|unordered_map)\b")
HOTPATH_ALLOW = re.compile(r"HOTPATH-ALLOW\([^)]*\S[^)]*\)")

# ---- fastpath-coverage rule ------------------------------------------
CLASS_OPEN = re.compile(r"\b(?:class|struct)\s+(\w+)[^;{)]*\{")
TICK_DECL = re.compile(r"\btick\s*\(\s*Cycle\b")
NEXT_EVENT_DECL = re.compile(r"\bnextEventCycle\s*\(")
FASTPATH_SKIP = re.compile(r"FASTPATH-SKIP\([^)]*\S[^)]*\)")


def extract_snapshot_bodies(text):
    """Concatenate the bodies of every snapshot/restore-ish function."""
    bodies = []
    for m in SNAPSHOT_FN_OPEN.finditer(text):
        depth = 1
        i = m.end()
        while i < len(text) and depth > 0:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        bodies.append(text[m.end():i])
    return "\n".join(bodies)

LINE_COMMENT = re.compile(r"//.*$")
STRING_LIT = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_code_noise(line):
    """Drop string literals and comments so patterns match code only."""
    line = STRING_LIT.sub('""', line)
    return LINE_COMMENT.sub("", line)


def allows(line, rule):
    m = LINT_ALLOW.search(line)
    return bool(m and m.group("rule") == rule)


def guard_name(rel):
    # src/mem/l1d.hpp -> CKESIM_MEM_L1D_HPP
    inner = rel[len("src" + os.sep):]
    return "CKESIM_" + re.sub(r"[^A-Za-z0-9]", "_", inner).upper()


WAIVER_KINDS = (
    ("HOTPATH-ALLOW", HOTPATH_ALLOW),
    ("SNAPSHOT-SKIP", SNAPSHOT_SKIP),
    ("FASTPATH-SKIP", FASTPATH_SKIP),
)


class Linter:
    def __init__(self, root):
        self.root = root
        self.findings = []
        # (rel, line, kind) -> {"rule": str|None, "used": bool}
        self.waivers = {}

    def report(self, rel, lineno, rule, msg):
        self.findings.append(f"{rel}:{lineno}: [{rule}] {msg}")

    def register_waivers(self, rel, lines):
        for i, raw in enumerate(lines, 1):
            m = LINT_ALLOW.search(raw)
            if m:
                self.waivers[(rel, i, "LINT-ALLOW")] = {
                    "rule": m.group("rule"), "used": False}
            for kind, pat in WAIVER_KINDS:
                mm = pat.search(raw)
                # `(reason)` is the placeholder spelling used when a
                # comment talks ABOUT the marker; never a real waiver.
                if mm and "(reason)" not in mm.group(0):
                    self.waivers[(rel, i, kind)] = {
                        "rule": None, "used": False}

    def use_waiver(self, rel, line, kind, rule=None):
        w = self.waivers.get((rel, line, kind))
        if w is not None and (kind != "LINT-ALLOW"
                              or w["rule"] == rule):
            w["used"] = True

    def allows_line(self, rel, i, raw, rule):
        """Line-level LINT-ALLOW check that records the use."""
        if allows(raw, rule):
            self.use_waiver(rel, i, "LINT-ALLOW", rule)
            return True
        return False

    def lint_file(self, rel):
        path = os.path.join(self.root, rel)
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()

        is_header = rel.endswith(".hpp")
        self.register_waivers(rel, lines)
        stdio_file_line = next(
            (j for j, l in enumerate(lines[:40], 1)
             if allows(l, "stdio")), None)
        is_hotpath = (rel in HOTPATH_FILES
                      or rel.startswith(HOTPATH_DIRS))

        for i, raw in enumerate(lines, 1):
            code = strip_code_noise(raw)

            if rel not in RNG_FILES:
                for pat, what in DETERMINISM_PATTERNS:
                    if not pat.search(code):
                        continue
                    if self.allows_line(rel, i, raw, "determinism"):
                        continue
                    self.report(
                        rel, i, "determinism",
                        f"{what} — route all randomness through "
                        "src/sim/rng.hpp and never read the "
                        "wall clock in simulation code")

            for pat, what in ASSERT_PATTERNS:
                if not pat.search(code):
                    continue
                if self.allows_line(rel, i, raw, "bare-assert"):
                    continue
                self.report(
                    rel, i, "bare-assert",
                    f"{what} — use SIM_CHECK/SIM_INVARIANT "
                    "from sim/check.hpp")

            for pat, what in STDIO_ALWAYS:
                if not pat.search(code):
                    continue
                if self.allows_line(rel, i, raw, "stdio"):
                    continue
                self.report(
                    rel, i, "stdio",
                    f"{what} — simulator code must not write "
                    "to standard streams; reporting goes "
                    "through the metrics layer")
            for pat, what in STDOUT_PRINTF:
                if not pat.search(code):
                    continue
                if self.allows_line(rel, i, raw, "stdio"):
                    continue
                if stdio_file_line is not None:
                    self.use_waiver(rel, stdio_file_line,
                                    "LINT-ALLOW", "stdio")
                    continue
                self.report(
                    rel, i, "stdio",
                    f"{what} — stdout output is reserved "
                    "for files with a file-level "
                    "`// LINT-ALLOW(stdio): reason` "
                    "marker")

            if is_hotpath:
                m = HOTPATH_CONTAINER.search(code)
                if m:
                    if HOTPATH_ALLOW.search(raw):
                        self.use_waiver(rel, i, "HOTPATH-ALLOW")
                    elif i >= 2 and HOTPATH_ALLOW.search(
                            lines[i - 2]):
                        self.use_waiver(rel, i - 1, "HOTPATH-ALLOW")
                    else:
                        self.report(
                            rel, i, "hotpath",
                            f"{m.group(0)} in a per-cycle simulation "
                            "path — use RingBuf (sim/ringbuf.hpp) "
                            "or a flat table (DESIGN.md §14), or "
                            "waive a cold-path use with "
                            "`// HOTPATH-ALLOW(reason)`")

            if NOLINT.search(raw) and not NOLINT_OK.search(raw):
                self.report(
                    rel, i, "nolint-reason",
                    "bare NOLINT — write "
                    "`NOLINT(check-name): reason`")

            if is_header:
                m = ID_PARAM.search(code)
                if m and not self.allows_line(
                        rel, i, raw, "int-id-param"):
                    self.report(
                        rel, i, "int-id-param",
                        f"integer parameter '{m.group(1)}' — use the "
                        "strong types from sim/types.hpp (KernelId, "
                        "SmId, WarpSlot) or rename to *_index if it "
                        "is a positional index")

        if is_header:
            self.lint_guard(rel, lines)
            self.lint_snapshot_coverage(rel, lines)
            self.lint_fastpath_coverage(rel, lines)

    def lint_fastpath_coverage(self, rel, lines):
        text = "\n".join(
            strip_code_noise(l) if "FASTPATH-SKIP" not in l else l
            for l in lines)
        for m in CLASS_OPEN.finditer(text):
            depth = 1
            i = m.end()
            while i < len(text) and depth > 0:
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                i += 1
            body = text[m.end():i]
            tick = TICK_DECL.search(body)
            if not tick:
                continue
            if NEXT_EVENT_DECL.search(body):
                continue
            skip = FASTPATH_SKIP.search(body)
            if skip:
                skip_line = text.count(
                    "\n", 0, m.end() + skip.start()) + 1
                self.use_waiver(rel, skip_line, "FASTPATH-SKIP")
                continue
            lineno = text.count("\n", 0, m.end() + tick.start()) + 1
            self.report(
                rel, lineno, "fastpath-coverage",
                f"class '{m.group(1)}' declares tick(Cycle ...) but "
                "no nextEventCycle() horizon — implement the "
                "Clockable contract (sim/clockable.hpp) or waive "
                "with `// FASTPATH-SKIP(reason)` in the class body")

    def lint_snapshot_coverage(self, rel, lines):
        text = "\n".join(lines)
        if not (SNAPSHOT_DECL.search(text)
                and RESTORE_DECL.search(text)):
            return
        combined = text
        cpp_path = os.path.join(self.root, rel[:-len(".hpp")] + ".cpp")
        if os.path.exists(cpp_path):
            with open(cpp_path, encoding="utf-8",
                      errors="replace") as f:
                combined += "\n" + f.read()
        bodies = extract_snapshot_bodies(combined)
        for i, raw in enumerate(lines, 1):
            if SNAPSHOT_SKIP.search(raw):
                # The marker is live when it annotates a data member:
                # on its own declaration line, or a comment within
                # the three lines above one (doc-block style).
                for j in range(i, min(i + 3, len(lines)) + 1):
                    if MEMBER_DECL.search(
                            strip_code_noise(lines[j - 1])):
                        self.use_waiver(rel, i, "SNAPSHOT-SKIP")
                        break
                continue
            m = MEMBER_DECL.search(strip_code_noise(raw))
            if not m:
                continue
            name = m.group(1)
            if not re.search(rf"\b{re.escape(name)}\b", bodies):
                self.report(
                    rel, i, "snapshot-coverage",
                    f"member '{name}' of a snapshotted class is "
                    "never serialized — add it to snapshot()/"
                    "restore() (and bump kSnapshotFormatVersion) or "
                    "waive it with `// SNAPSHOT-SKIP(reason)`")

    def lint_guard(self, rel, lines):
        want = guard_name(rel)
        ifndef = next(
            (l for l in lines
             if l.lstrip().startswith("#ifndef")), None)
        if ifndef is None or ifndef.split()[1] != want:
            got = ifndef.split()[1] if ifndef else "none"
            self.report(
                rel, 1, "include-guard",
                f"guard '{got}' — expected '{want}'")

    def run(self):
        src = os.path.join(self.root, "src")
        for dirpath, _, names in os.walk(src):
            for name in sorted(names):
                if not name.endswith((".hpp", ".cpp")):
                    continue
                rel = os.path.relpath(
                    os.path.join(dirpath, name), self.root)
                self.lint_file(rel)
        for (rel, line, kind), w in sorted(self.waivers.items()):
            if w["used"]:
                continue
            what = (f"LINT-ALLOW({w['rule']})"
                    if kind == "LINT-ALLOW" else kind)
            self.report(
                rel, line, "unused-waiver",
                f"{what} marker no longer suppresses any finding — "
                "the code it excused is gone (or never matched); "
                "delete the marker so waivers cannot rot")
        return self.findings


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--root",
        default=os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: parent of tools/)")
    args = ap.parse_args()

    findings = Linter(args.root).run()
    if findings:
        for f in sorted(findings):
            print(f, file=sys.stderr)
        print(f"lint_sim: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("lint_sim: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
