"""simcheck: AST-grounded semantic analyzer for the simulator's
determinism, snapshot and Clockable contracts (DESIGN.md section 15).

Run as a package: python3 tools/simcheck -p build [paths...]
"""

__version__ = "1.0"
