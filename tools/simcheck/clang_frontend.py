"""libclang (python `clang.cindex`) frontend.

Walks real ASTs of every TU listed in build/compile_commands.json and
produces the same normalized model as the fallback frontend, so the
rules are frontend-agnostic. This is the authoritative frontend: when
libclang is installed (the CI `simcheck` job apt-pins it), inherited
members, template instantiations and macro expansions come from the
compiler, not from heuristics.

Import of this module must stay safe on hosts without libclang —
callers go through `load()` which raises FrontendUnavailable instead
of ImportError at module import time.
"""

import os

from .lexer import lex
from .model import (
    ClassInfo,
    Field,
    FileModel,
    Method,
    Model,
    Param,
    RangeForLoop,
    VarDecl,
)


class FrontendUnavailable(RuntimeError):
    pass


def _import_cindex():
    try:
        from clang import cindex  # noqa: deferred, optional dep
    except ImportError as e:
        raise FrontendUnavailable(
            "python clang bindings not importable: " + str(e)
        )
    # Let an explicit override win, then common sonames.
    lib = os.environ.get("SIMCHECK_LIBCLANG")
    if lib:
        cindex.Config.set_library_file(lib)
    else:
        for cand in (
            "libclang.so",
            "libclang-18.so.18",
            "libclang-17.so.17",
            "libclang-16.so.16",
            "libclang-15.so.15",
            "libclang-14.so.14",
            "libclang-14.so.1",
        ):
            try:
                cindex.Config.set_library_file(cand)
                cindex.Index.create()
                break
            except Exception:
                cindex.Config.library_file = None
                continue
    try:
        cindex.Index.create()
    except Exception as e:
        raise FrontendUnavailable(
            "libclang shared library not loadable: " + str(e)
        )
    return cindex


def available():
    try:
        _import_cindex()
        return True
    except FrontendUnavailable:
        return False


def _spelling_tokens(cursor):
    """Lex the cursor's source extent with our own lexer so body token
    streams are identical in shape to the fallback frontend's."""
    try:
        src = cursor.extent.start.file
        if src is None:
            return []
        with open(src.name, encoding="utf-8", errors="replace") as f:
            text = f.read()
        # Offsets are byte-ish; slice by offset then re-lex with the
        # start line so token lines match the real file.
        start = cursor.extent.start.offset
        end = cursor.extent.end.offset
        snippet = text[start:end]
        toks = lex(snippet)
        delta = cursor.extent.start.line - 1
        for t in toks:
            t.line += delta
        return toks
    except Exception:
        return []


class _TuVisitor:
    def __init__(self, cindex, repo_root, model):
        self.ci = cindex
        self.root = repo_root
        self.model = model

    def _rel(self, location):
        if location.file is None:
            return None
        path = os.path.realpath(location.file.name)
        root = os.path.realpath(self.root)
        if not path.startswith(root + os.sep):
            return None
        return os.path.relpath(path, root)

    def _file_model(self, rel):
        if rel not in self.model.files:
            fm = FileModel(path=rel)
            full = os.path.join(self.root, rel)
            try:
                with open(
                    full, encoding="utf-8", errors="replace"
                ) as f:
                    text = f.read()
                fm.lines = text.splitlines()
                fm.tokens = lex(text)
            except OSError:
                pass
            self.model.add_file(fm)
        return self.model.files[rel]

    def visit(self, tu):
        ck = self.ci.CursorKind
        for cursor in tu.cursor.walk_preorder():
            rel = self._rel(cursor.location)
            if rel is None:
                continue
            if cursor.kind in (
                ck.CLASS_DECL,
                ck.STRUCT_DECL,
                ck.CLASS_TEMPLATE,
            ):
                if cursor.is_definition():
                    self._visit_class(cursor, rel)
            elif cursor.kind == ck.ENUM_DECL:
                fm = self._file_model(rel)
                if cursor.spelling and (
                    cursor.spelling not in fm.enums
                ):
                    fm.enums.append(cursor.spelling)
            elif cursor.kind in (
                ck.TYPE_ALIAS_DECL,
                ck.TYPEDEF_DECL,
            ):
                fm = self._file_model(rel)
                try:
                    fm.aliases[cursor.spelling] = (
                        cursor.underlying_typedef_type.spelling
                    )
                except Exception:
                    pass
            elif cursor.kind == ck.FUNCTION_DECL:
                self._visit_function(cursor, rel, cls=None)
            elif cursor.kind == ck.CXX_FOR_RANGE_STMT:
                self._visit_range_for(cursor, rel)
            elif cursor.kind in (ck.VAR_DECL, ck.PARM_DECL):
                fm = self._file_model(rel)
                fm.var_decls.append(
                    VarDecl(
                        name=cursor.spelling,
                        file=rel,
                        line=cursor.location.line,
                        type_spelling=cursor.type.spelling,
                        kind=(
                            "param"
                            if cursor.kind == ck.PARM_DECL
                            else "local"
                        ),
                    )
                )

    def _visit_class(self, cursor, rel):
        ck = self.ci.CursorKind
        fm = self._file_model(rel)
        # Dedupe: the same header parses in many TUs.
        for c in fm.classes:
            if (
                c.name == cursor.spelling
                and c.line == cursor.location.line
            ):
                return
        cls = ClassInfo(
            name=cursor.spelling,
            file=rel,
            line=cursor.location.line,
            end_line=cursor.extent.end.line,
        )
        for child in cursor.get_children():
            if child.kind == ck.CXX_BASE_SPECIFIER:
                base = child.type.spelling
                base = base.split("<", 1)[0].rsplit("::", 1)[-1]
                cls.bases.append(base)
            elif child.kind == ck.FIELD_DECL:
                has_init = any(
                    g.kind.is_expression()
                    for g in child.get_children()
                    if g.kind != ck.TYPE_REF
                )
                cls.fields.append(
                    Field(
                        name=child.spelling,
                        file=rel,
                        line=child.location.line,
                        type_spelling=child.type.spelling,
                        has_initializer=has_init,
                    )
                )
            elif child.kind in (
                ck.CXX_METHOD,
                ck.CONSTRUCTOR,
                ck.DESTRUCTOR,
                ck.FUNCTION_TEMPLATE,
            ):
                self._visit_function(child, rel, cls=cls)
        fm.classes.append(cls)

    def _visit_function(self, cursor, rel, cls):
        ck = self.ci.CursorKind
        params = []
        init_list = []
        body = None
        for child in cursor.get_children():
            if child.kind == ck.PARM_DECL:
                params.append(
                    Param(
                        name=child.spelling,
                        type_spelling=child.type.spelling,
                    )
                )
            elif child.kind == ck.MEMBER_REF:
                # Constructor member-init-list entry.
                init_list.append(
                    (child.spelling, child.location.line)
                )
            elif child.kind == ck.COMPOUND_STMT:
                body = _spelling_tokens(child)

        is_ctor = cursor.kind == ck.CONSTRUCTOR
        try:
            ret = (
                ""
                if is_ctor or cursor.kind == ck.DESTRUCTOR
                else cursor.result_type.spelling
            )
        except Exception:
            ret = ""
        method = Method(
            name=cursor.spelling,
            file=rel,
            line=cursor.location.line,
            params=params,
            return_type=ret,
            is_const=bool(getattr(cursor, "is_const_method",
                                  lambda: False)()),
            is_ctor=is_ctor,
            is_static=bool(
                getattr(cursor, "is_static_method", lambda: False)()
            ),
            body=body,
            init_list=init_list,
        )
        if cls is not None:
            cls.methods.append(method)
        else:
            fm = self._file_model(rel)
            # Out-of-line member definition: attach by semantic
            # parent so the rules see the body on the class.
            parent = cursor.semantic_parent
            if parent is not None and parent.kind in (
                self.ci.CursorKind.CLASS_DECL,
                self.ci.CursorKind.STRUCT_DECL,
            ):
                method.name = (
                    parent.spelling + "::" + method.name
                )
            fm.free_functions.append(method)

    def _visit_range_for(self, cursor, rel):
        ck = self.ci.CursorKind
        fm = self._file_model(rel)
        range_type = ""
        range_sp = ""
        body = []
        children = list(cursor.get_children())
        for child in children:
            if child.kind == ck.DECL_STMT:
                continue
            if child.kind == ck.COMPOUND_STMT:
                body = _spelling_tokens(child)
        # The range initializer is the first expression child.
        for child in children:
            if child.kind.is_expression():
                try:
                    t = child.type
                    # Strip references.
                    if t.kind == self.ci.TypeKind.LVALUEREFERENCE:
                        t = t.get_pointee()
                    range_type = t.spelling
                except Exception:
                    range_type = ""
                range_sp = " ".join(
                    tok.spelling for tok in child.get_tokens()
                )
                break
        fm.loops.append(
            RangeForLoop(
                file=rel,
                line=cursor.location.line,
                range_spelling=range_sp,
                range_type=range_type,
                body=body,
                enclosing_class="",
                enclosing_function="",
            )
        )


def load(repo_root, compile_db_dir, sources):
    """Parse every TU that compile_commands.json lists whose file is
    in `sources` (repo-relative set), returning a Model. Raises
    FrontendUnavailable when libclang cannot be loaded."""
    cindex = _import_cindex()
    try:
        db = cindex.CompilationDatabase.fromDirectory(compile_db_dir)
    except cindex.CompilationDatabaseError as e:
        raise FrontendUnavailable(
            "cannot load compile_commands.json from "
            + compile_db_dir
            + ": "
            + str(e)
        )
    index = cindex.Index.create()
    model = Model()
    model.frontend = "clang"
    visitor = _TuVisitor(cindex, repo_root, model)

    seen = set()
    for cmd in db.getAllCompileCommands():
        fname = os.path.realpath(
            os.path.join(cmd.directory, cmd.filename)
        )
        rel = os.path.relpath(fname, os.path.realpath(repo_root))
        if sources and rel not in sources:
            continue
        if fname in seen:
            continue
        seen.add(fname)
        args = [a for a in cmd.arguments][1:]
        # Drop the output/input arguments; libclang re-adds them.
        cleaned = []
        skip = False
        for a in args:
            if skip:
                skip = False
                continue
            if a in ("-o", "-c"):
                skip = a == "-o"
                continue
            if a == cmd.filename or a == fname:
                continue
            cleaned.append(a)
        try:
            tu = index.parse(fname, args=cleaned)
        except cindex.TranslationUnitLoadError:
            continue
        visitor.visit(tu)
    return model
