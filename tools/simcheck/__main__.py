import os
import sys

# Support `python3 tools/simcheck` (directory execution): put tools/
# on the path so the package imports resolve.
if __package__ in (None, ""):
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    from simcheck.cli import main
else:
    from .cli import main

sys.exit(main())
