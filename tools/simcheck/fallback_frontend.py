"""Self-contained C++ frontend for hosts without libclang.

A recursive scanner over the lexer's token stream that recovers the
slice of C++ semantics the rules need: class definitions with base
lists, fields with types and initializers, method signatures with
bodies (including out-of-line `Cls::method` definitions in sibling
.cpp files), constructor member-init lists, enum names, type aliases,
range-for loops with resolved range types, and typed local/param
declarations.

It is deliberately *not* a full parser: anything it cannot parse it
skips to the next statement or matching brace, so unparsed constructs
cost coverage, never crashes or phantom findings. The golden fixtures
under tests/simcheck_fixtures/ pin the constructs it must get right;
parity with the libclang frontend is asserted there whenever both are
available.
"""

from .lexer import lex, match_brace, match_paren, spell
from .model import (
    ClassInfo,
    Field,
    FileModel,
    Method,
    Param,
    RangeForLoop,
    VarDecl,
)

# Tokens that may prefix a declaration without being part of its type.
DECL_SPECIFIERS = frozenset(
    """static mutable constexpr consteval constinit inline virtual
    explicit friend extern thread_local register typename""".split()
)

# Statement keywords that can never start a declaration we care about.
STMT_KEYWORDS = frozenset(
    """return if else while for do switch case default break continue
    goto try catch throw delete new sizeof co_return co_yield
    co_await""".split()
)


def _is_type_start(tok):
    return tok.kind == "ident" or (
        tok.kind == "kw"
        and tok.spelling
        in (
            "const",
            "volatile",
            "unsigned",
            "signed",
            "int",
            "long",
            "short",
            "char",
            "bool",
            "float",
            "double",
            "void",
            "auto",
            "decltype",
        )
    )


class _Parser:
    def __init__(self, path, text):
        self.fm = FileModel(path=path)
        self.fm.lines = text.splitlines()
        self.toks = [t for t in lex(text)]
        self.fm.tokens = self.toks

    # ---- helpers -----------------------------------------------------

    def _skip_attrs(self, i):
        """Skip [[...]] attribute sequences and alignas(...)."""
        toks = self.toks
        while i + 1 < len(toks):
            if (
                toks[i].spelling == "["
                and toks[i + 1].spelling == "["
            ):
                depth = 0
                while i < len(toks):
                    if toks[i].spelling == "[":
                        depth += 1
                    elif toks[i].spelling == "]":
                        depth -= 1
                        if depth == 0:
                            i += 1
                            break
                    i += 1
            elif toks[i].spelling == "alignas" and (
                toks[i + 1].spelling == "("
            ):
                i = match_paren(self.toks, i + 1)
            else:
                break
        return i

    def _skip_template_header(self, i):
        """i is at 'template'; return index past its <...> header."""
        toks = self.toks
        i += 1
        if i < len(toks) and toks[i].spelling == "<":
            depth = 0
            while i < len(toks):
                s = toks[i].spelling
                if s == "<":
                    depth += 1
                elif s == ">":
                    depth -= 1
                    if depth == 0:
                        return i + 1
                elif s == ">>":
                    depth -= 2
                    if depth <= 0:
                        return i + 1
                i += 1
        return i

    def _statement_end(self, i):
        """Index past the ';' ending the statement at i, honoring
        nested (), [], {} groups."""
        toks = self.toks
        n = len(toks)
        while i < n:
            s = toks[i].spelling
            if s == ";":
                return i + 1
            if s == "(":
                i = match_paren(toks, i)
                continue
            if s == "{":
                i = match_brace(toks, i)
                # `struct X {...};` still needs its ';', but lone
                # compound statements do not — accept either.
                if i < n and toks[i].spelling == ";":
                    return i + 1
                return i
            if s == "[":
                depth = 0
                while i < n:
                    if toks[i].spelling == "[":
                        depth += 1
                    elif toks[i].spelling == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    i += 1
                i += 1
                continue
            i += 1
        return n

    # ---- top level ---------------------------------------------------

    def parse(self):
        self._scan_scope(0, len(self.toks), cls=None)
        return self.fm

    def _scan_scope(self, i, end, cls):
        toks = self.toks
        while i < end:
            t = toks[i]
            s = t.spelling

            if t.kind == "pp":
                i += 1
                continue
            if s == ";":
                i += 1
                continue
            if s == "template":
                i = self._skip_template_header(i)
                continue
            if s == "namespace":
                i = self._parse_namespace(i, end)
                continue
            if s in ("class", "struct", "union"):
                i = self._parse_class_or_skip(i, end)
                continue
            if s == "enum":
                i = self._parse_enum(i)
                continue
            if s == "using":
                i = self._parse_using(i)
                continue
            if s == "typedef":
                i = self._parse_typedef(i)
                continue
            if s == "extern" and i + 1 < end and (
                toks[i + 1].kind == "str"
            ):
                # extern "C" [{...}]
                if i + 2 < end and toks[i + 2].spelling == "{":
                    inner_end = match_brace(toks, i + 2)
                    self._scan_scope(i + 3, inner_end - 1, cls)
                    i = inner_end
                else:
                    i += 2
                continue
            if s == "static_assert":
                i = self._statement_end(i)
                continue

            # Candidate function definition/declaration or variable.
            ni = self._try_parse_function(i, end, cls)
            if ni is not None:
                i = ni
                continue
            i = self._statement_end(i)

    def _parse_namespace(self, i, end):
        toks = self.toks
        j = i + 1
        while j < end and toks[j].spelling not in ("{", ";", "="):
            j += 1
        if j >= end:
            return end
        if toks[j].spelling == "{":
            inner_end = match_brace(toks, j)
            self._scan_scope(j + 1, inner_end - 1, cls=None)
            return inner_end
        # `namespace a = b;` or `;`
        return self._statement_end(j)

    def _parse_enum(self, i):
        toks = self.toks
        j = i + 1
        if j < len(toks) and toks[j].spelling in ("class", "struct"):
            j += 1
        if j < len(toks) and toks[j].kind == "ident":
            self.fm.enums.append(toks[j].spelling)
        return self._statement_end(j)

    def _parse_using(self, i):
        toks = self.toks
        # using NAME = type; | using namespace ...; | using Base::f;
        if i + 2 < len(toks) and toks[i + 2].spelling == "=":
            name = toks[i + 1].spelling
            j = i + 3
            start = j
            while j < len(toks) and toks[j].spelling != ";":
                j += 1
            self.fm.aliases[name] = spell(toks[start:j])
            return j + 1
        return self._statement_end(i)

    def _parse_typedef(self, i):
        toks = self.toks
        j = self._statement_end(i)
        # typedef <type...> NAME ;  (skip function-pointer forms)
        body = toks[i + 1 : j - 1]
        if body and body[-1].kind == "ident" and not any(
            t.spelling == "(" for t in body
        ):
            self.fm.aliases[body[-1].spelling] = spell(body[:-1])
        return j

    # ---- classes -----------------------------------------------------

    def _parse_class_or_skip(self, i, end, register=True):
        """i at class/struct/union. Parse a definition; skip forward
        declarations and variables of anonymous types."""
        toks = self.toks
        j = i + 1
        j = self._skip_attrs(j)
        name = None
        if j < end and toks[j].kind == "ident":
            name = toks[j].spelling
            j += 1
            # Qualified or templated names: Cls<...>::Nested — give up
            # on registering a useful name, still parse the body.
            while j < end and toks[j].spelling in ("<", "::"):
                if toks[j].spelling == "<":
                    depth = 0
                    while j < end:
                        s = toks[j].spelling
                        if s == "<":
                            depth += 1
                        elif s == ">":
                            depth -= 1
                            if depth == 0:
                                j += 1
                                break
                        elif s == ">>":
                            depth -= 2
                            if depth <= 0:
                                j += 1
                                break
                        j += 1
                else:
                    j += 1
                    if j < end and toks[j].kind == "ident":
                        name = toks[j].spelling
                        j += 1
        if j < end and toks[j].spelling == "final":
            j += 1

        bases = []
        if j < end and toks[j].spelling == ":":
            j += 1
            while j < end and toks[j].spelling != "{":
                tk = toks[j]
                if tk.kind == "ident" and tk.spelling not in (
                    "public",
                    "private",
                    "protected",
                    "virtual",
                ):
                    # Last identifier of each base path wins
                    # (std::enable_shared_from_this -> that name).
                    if (
                        j + 1 >= end
                        or toks[j + 1].spelling in (",", "{", "<")
                    ):
                        bases.append(tk.spelling)
                j += 1

        if j >= end or toks[j].spelling != "{":
            # Forward declaration or variable decl of elaborated type.
            return self._statement_end(i)

        body_end = match_brace(toks, j)
        if name is None:
            return self._statement_end(body_end - 1)

        cls = ClassInfo(
            name=name,
            file=self.fm.path,
            line=toks[i].line,
            end_line=toks[body_end - 1].line
            if body_end - 1 < len(toks)
            else toks[i].line,
            bases=bases,
        )
        self._parse_class_body(j + 1, body_end - 1, cls)
        if register:
            self.fm.classes.append(cls)
        return self._statement_end(body_end - 1)

    def _parse_class_body(self, i, end, cls):
        toks = self.toks
        while i < end:
            t = toks[i]
            s = t.spelling

            if t.kind == "pp" or s == ";":
                i += 1
                continue
            if s in ("public", "private", "protected") and (
                i + 1 < end and toks[i + 1].spelling == ":"
            ):
                i += 2
                continue
            if s == "template":
                i = self._skip_template_header(i)
                continue
            if s == "friend":
                i = self._statement_end(i)
                continue
            if s in ("class", "struct", "union"):
                i = self._parse_nested(i, end, cls)
                continue
            if s == "enum":
                i = self._parse_enum(i)
                continue
            if s == "using":
                i = self._parse_using(i)
                continue
            if s == "typedef":
                i = self._parse_typedef(i)
                continue
            if s == "static_assert":
                i = self._statement_end(i)
                continue

            i = self._parse_member(i, end, cls)

    def _parse_nested(self, i, end, cls):
        """Nested class/struct inside a class body. Register it as a
        top-level class (simple-name index) AND, when it declares
        fields, keep scanning normally."""
        return self._parse_class_or_skip(i, end)

    # ---- members -----------------------------------------------------

    def _parse_member(self, i, end, cls):
        """Parse one member declaration starting at i; returns the
        index past it. Distinguishes methods (ident followed by '('
        in declarator position) from data members."""
        toks = self.toks
        start = i
        i = self._skip_attrs(i)

        specifiers = set()
        while i < end and (
            toks[i].spelling in DECL_SPECIFIERS
            or toks[i].spelling == "constexpr"
        ):
            specifiers.add(toks[i].spelling)
            i = self._skip_attrs(i + 1)

        # Destructor.
        if i < end and toks[i].spelling == "~":
            j = i + 2
            if j < end and toks[j].spelling == "(":
                after = match_paren(toks, j)
                return self._finish_method(
                    start,
                    after,
                    end,
                    cls,
                    name="~" + toks[i + 1].spelling,
                    ret_tokens=[],
                    param_tokens=[],
                    specifiers=specifiers,
                    name_line=toks[i].line,
                )
            return self._statement_end(i)

        # Walk the declaration head: type tokens, then a declarator.
        head_start = i
        angle = 0
        name_idx = None
        j = i
        while j < end:
            tk = toks[j]
            s = tk.spelling
            if s == "<":
                angle += 1
            elif s == ">" and angle > 0:
                angle -= 1
            elif s == ">>" and angle > 0:
                angle = max(0, angle - 2)
            elif angle == 0:
                if s in (";", "=", "{", "}", ","):
                    break
                if s == "operator":
                    # operator<=, operator(), operator[] ...
                    k = j + 1
                    while k < end and toks[k].spelling != "(":
                        k += 1
                    # operator()(...) : first '(' pair is the name.
                    if (
                        k + 1 < end
                        and toks[k].spelling == "("
                        and toks[k + 1].spelling == ")"
                        and k + 2 < end
                        and toks[k + 2].spelling == "("
                    ):
                        k += 2
                    if k < end:
                        opname = spell(toks[j : k])
                        after = match_paren(toks, k)
                        params = toks[k + 1 : after - 1]
                        return self._finish_method(
                            start,
                            after,
                            end,
                            cls,
                            name=opname,
                            ret_tokens=toks[head_start:j],
                            param_tokens=params,
                            specifiers=specifiers,
                            name_line=tk.line,
                        )
                    return self._statement_end(j)
                if s == "(":
                    # Declarator call: previous ident is the name.
                    if name_idx is not None and (
                        name_idx == j - 1
                        or (
                            # Cls<T> f(... ) — name right before '('.
                            toks[j - 1].kind == "ident"
                        )
                    ):
                        nm_i = j - 1
                        if toks[nm_i].kind != "ident":
                            return self._statement_end(j)
                        after = match_paren(toks, j)
                        return self._finish_method(
                            start,
                            after,
                            end,
                            cls,
                            name=toks[nm_i].spelling,
                            ret_tokens=toks[head_start:nm_i],
                            param_tokens=toks[j + 1 : after - 1],
                            specifiers=specifiers,
                            name_line=toks[nm_i].line,
                        )
                    return self._statement_end(j)
                if tk.kind == "ident":
                    name_idx = j
            j += 1

        # Data member(s).
        return self._finish_fields(
            start, head_start, j, end, cls, specifiers
        )

    def _finish_fields(
        self, start, head_start, stop, end, cls, specifiers
    ):
        """Tokens [head_start, stop) are `type declarator` with stop at
        ';' '=' '{' or ',' (top level). Emit Field records for each
        declarator sharing the type."""
        toks = self.toks
        i = stop
        # Identify first declarator name: last ident in the head that
        # is preceded by at least one other type token.
        seg = toks[head_start:stop]
        if not seg:
            return self._statement_end(start)

        def last_ident(tokens):
            for k in range(len(tokens) - 1, -1, -1):
                if tokens[k].kind == "ident":
                    return k
            return None

        decl_end = self._statement_end(stop if i < end else start)

        # Split everything up to ';' into declarators on top-level
        # commas: type a = x, b{y}, c;
        li = last_ident(seg)
        if li is None or li == 0:
            return decl_end
        type_tokens = seg[:li]
        # Strip trailing array extent from the name side.
        name_tok = seg[li]

        def add_field(name_tok, has_init):
            cls.fields.append(
                Field(
                    name=name_tok.spelling,
                    file=self.fm.path,
                    line=name_tok.line,
                    type_spelling=spell(
                        [
                            t
                            for t in type_tokens
                            if t.spelling not in DECL_SPECIFIERS
                        ]
                    ),
                    has_initializer=has_init,
                    is_static="static" in specifiers,
                )
            )

        # Does an initializer follow this declarator?
        has_init = i < end and toks[i].spelling in ("=", "{")
        add_field(name_tok, has_init)

        # Further declarators until ';'.
        j = i
        depth = 0
        pending = None
        while j < len(toks) and j < decl_end:
            s = toks[j].spelling
            if s in ("(", "[", "{"):
                depth += 1
            elif s in (")", "]", "}"):
                depth -= 1
            elif depth == 0 and s == ",":
                k = j + 1
                while k < decl_end and toks[k].spelling in ("*", "&"):
                    k += 1
                if k < decl_end and toks[k].kind == "ident":
                    pending = toks[k]
                    nxt = (
                        toks[k + 1].spelling
                        if k + 1 < decl_end
                        else ";"
                    )
                    add_field(pending, nxt in ("=", "{"))
            j += 1
        return decl_end

    def _finish_method(
        self,
        start,
        after_paren,
        end,
        cls,
        name,
        ret_tokens,
        param_tokens,
        specifiers,
        name_line,
    ):
        """after_paren is just past the parameter list ')'. Consume
        trailing const/noexcept/etc., an optional ctor init list, and
        the body or ';'."""
        toks = self.toks
        i = after_paren
        is_const = False
        while i < end:
            s = toks[i].spelling
            if s == "const":
                is_const = True
                i += 1
            elif s in ("noexcept", "override", "final", "volatile",
                       "&", "&&", "mutable"):
                if (
                    s == "noexcept"
                    and i + 1 < end
                    and toks[i + 1].spelling == "("
                ):
                    i = match_paren(toks, i + 1)
                else:
                    i += 1
            elif s == "->":
                # Trailing return type: replaces ret_tokens.
                j = i + 1
                depth = 0
                while j < end:
                    sj = toks[j].spelling
                    if sj == "<":
                        depth += 1
                    elif sj == ">":
                        depth = max(0, depth - 1)
                    elif depth == 0 and sj in ("{", ";", "="):
                        break
                    j += 1
                ret_tokens = toks[i + 1 : j]
                i = j
            else:
                break

        parts = name.split("::")
        is_ctor = (cls is not None and name == cls.name) or (
            len(parts) >= 2 and parts[-1] == parts[-2]
        )
        init_list = []
        if i < end and toks[i].spelling == ":" and is_ctor:
            i += 1
            while i < end and toks[i].spelling != "{":
                if toks[i].kind == "ident" and i + 1 < end and (
                    toks[i + 1].spelling in ("(", "{")
                ):
                    init_list.append(
                        (toks[i].spelling, toks[i].line)
                    )
                    close = (
                        match_paren(toks, i + 1)
                        if toks[i + 1].spelling == "("
                        else match_brace(toks, i + 1)
                    )
                    i = close
                else:
                    i += 1

        body = None
        if i < end and toks[i].spelling == "{":
            body_end = match_brace(toks, i)
            body = toks[i + 1 : body_end - 1]
            i = body_end
        elif i < end and toks[i].spelling == "=":
            # = default; = delete; = 0;
            i = self._statement_end(i)
        else:
            i = self._statement_end(i)

        method = Method(
            name=name,
            file=self.fm.path,
            line=name_line,
            params=_parse_params(param_tokens),
            return_type=spell(
                [
                    t
                    for t in ret_tokens
                    if t.spelling not in DECL_SPECIFIERS
                ]
            ),
            is_const=is_const,
            is_ctor=is_ctor,
            is_static="static" in specifiers,
            is_virtual="virtual" in specifiers,
            body=body,
            init_list=init_list,
        )
        if cls is not None:
            cls.methods.append(method)
        else:
            self.fm.free_functions.append(method)
        if body is not None:
            self._scan_body(
                body,
                enclosing_class=cls.name if cls else "",
                enclosing_function=name,
                params=method.params,
            )
        return i

    # ---- free functions / out-of-line definitions --------------------

    def _try_parse_function(self, i, end, cls):
        """At namespace scope: try `ret [Qual::]name(params) [...]
        [{body}|;]`. Returns index past it, or None if this is not a
        function-shaped declaration."""
        toks = self.toks
        j = self._skip_attrs(i)
        specifiers = set()
        while j < end and toks[j].spelling in DECL_SPECIFIERS:
            specifiers.add(toks[j].spelling)
            j = self._skip_attrs(j + 1)
        if j >= end or not _is_type_start(toks[j]):
            return None

        angle = 0
        name_idx = None
        qual = []
        k = j
        while k < end:
            s = toks[k].spelling
            if s == "<":
                angle += 1
            elif s == ">" and angle > 0:
                angle -= 1
            elif s == ">>" and angle > 0:
                angle = max(0, angle - 2)
            elif angle == 0:
                if s in (";", "{", "=", "}"):
                    return None
                if s == "(":
                    if name_idx is None or name_idx != k - 1:
                        return None
                    break
                if s == "operator":
                    return self._parse_free_operator(
                        i, j, k, end, specifiers
                    )
                if toks[k].kind == "ident":
                    name_idx = k
                    if (
                        k + 1 < end
                        and toks[k + 1].spelling == "::"
                    ):
                        qual.append(toks[k].spelling)
            k += 1
        if k >= end:
            return None

        after = match_paren(toks, k)
        name = toks[name_idx].spelling
        # Qualified out-of-line member: record as "Qual::name".
        if qual:
            name = "::".join(qual[-1:]) + "::" + name
        ret_tokens = toks[j:name_idx]
        # Trim the qualifier tokens off the return type.
        if qual:
            # Remove trailing `Qual ::` pairs from ret_tokens.
            while (
                len(ret_tokens) >= 2
                and ret_tokens[-1].spelling == "::"
            ):
                ret_tokens = ret_tokens[:-2]
        return self._finish_method(
            i,
            after,
            end,
            None,
            name=name,
            ret_tokens=ret_tokens,
            param_tokens=toks[k + 1 : after - 1],
            specifiers=specifiers,
            name_line=toks[name_idx].line,
        )

    def _parse_free_operator(self, start, j, k, end, specifiers):
        toks = self.toks
        m = k + 1
        while m < end and toks[m].spelling != "(":
            m += 1
        if m >= end:
            return self._statement_end(start)
        after = match_paren(toks, m)
        return self._finish_method(
            start,
            after,
            end,
            None,
            name=spell(toks[k:m]),
            ret_tokens=toks[j:k],
            param_tokens=toks[m + 1 : after - 1],
            specifiers=specifiers,
            name_line=toks[k].line,
        )

    # ---- function-body analysis --------------------------------------

    def _scan_body(
        self, body, enclosing_class, enclosing_function, params
    ):
        """Collect range-for loops and typed local declarations from a
        captured body token list."""
        locals_ = {}
        for p in params:
            if p.name:
                self.fm.var_decls.append(
                    VarDecl(
                        name=p.name,
                        file=self.fm.path,
                        line=body[0].line if body else 0,
                        type_spelling=p.type_spelling,
                        kind="param",
                    )
                )
                locals_[p.name] = p.type_spelling

        i = 0
        n = len(body)
        stmt_start = True
        while i < n:
            t = body[i]
            s = t.spelling

            if s == "for" and i + 1 < n and (
                body[i + 1].spelling == "("
            ):
                i = self._scan_for(
                    body,
                    i,
                    locals_,
                    enclosing_class,
                    enclosing_function,
                )
                stmt_start = True
                continue

            if stmt_start and (
                t.kind == "ident"
                or (t.kind == "kw" and _is_type_start(t))
            ):
                decl = self._try_local_decl(body, i, n)
                if decl is not None:
                    name, type_sp, line, ni = decl
                    locals_[name] = type_sp
                    self.fm.var_decls.append(
                        VarDecl(
                            name=name,
                            file=self.fm.path,
                            line=line,
                            type_spelling=type_sp,
                            kind="local",
                        )
                    )
                    i = ni
                    stmt_start = True
                    continue

            stmt_start = s in (";", "{", "}", ":") or (
                t.kind == "kw" and s in ("else", "do")
            )
            i += 1

        # Record loop-free pointer comparisons are handled by rules
        # directly over tokens + var_decls; nothing else to do here.

    def _try_local_decl(self, body, i, n):
        """Try to read `const? Type<...> [*&]* name [=;{(]` at i.
        Returns (name, type_spelling, line, next_index) or None."""
        j = i
        tokens = []
        while j < n and body[j].spelling in ("const", "static",
                                             "constexpr"):
            tokens.append(body[j])
            j += 1
        if j >= n or not _is_type_start(body[j]):
            return None
        if body[j].kind == "kw" and body[j].spelling in STMT_KEYWORDS:
            return None
        # Type path: ident (:: ident)* (<...>)?
        type_start = j
        tokens.append(body[j])
        j += 1
        while j < n and body[j].spelling == "::":
            if j + 1 < n and body[j + 1].kind in ("ident", "kw"):
                tokens.extend(body[j : j + 2])
                j += 2
            else:
                return None
        if j < n and body[j].spelling == "<":
            depth = 0
            while j < n:
                s = body[j].spelling
                tokens.append(body[j])
                if s == "<":
                    depth += 1
                elif s == ">":
                    depth -= 1
                    if depth == 0:
                        j += 1
                        break
                elif s == ">>":
                    depth -= 2
                    if depth <= 0:
                        j += 1
                        break
                elif s == ";":
                    return None
                j += 1
        while j < n and body[j].spelling in ("*", "&", "&&", "const"):
            tokens.append(body[j])
            j += 1
        if j >= n or body[j].kind != "ident":
            return None
        name_tok = body[j]
        j += 1
        if j >= n or body[j].spelling not in ("=", ";", "{", "("):
            return None
        # Looks like a declaration. Type = everything but the name.
        type_sp = spell(
            [
                t
                for t in tokens
                if t.spelling not in ("static", "constexpr")
            ]
        )
        # Advance past the initializer/statement.
        depth = 0
        while j < n:
            s = body[j].spelling
            if s in ("(", "[", "{"):
                depth += 1
            elif s in (")", "]", "}"):
                depth -= 1
            elif s == ";" and depth <= 0:
                j += 1
                break
            j += 1
        del type_start
        return (name_tok.spelling, type_sp, name_tok.line, j)

    def _scan_for(
        self, body, i, locals_, enclosing_class, enclosing_function
    ):
        """body[i] == 'for'. Record a RangeForLoop (for range-fors) or
        detect `.begin()` iteration in classic fors. Returns the index
        past the loop header (the body is scanned by the main walk)."""
        n = len(body)
        open_p = i + 1
        close_p = self._match_in(body, open_p)
        header = body[open_p + 1 : close_p - 1]

        # Find a top-level ':' (range-for separator).
        depth = 0
        colon = None
        for k, t in enumerate(header):
            s = t.spelling
            if s in ("(", "[", "{", "<"):
                depth += 1
            elif s in (")", "]", "}", ">"):
                depth = max(0, depth - 1)
            elif s == "?":
                depth += 1  # ternary ':' is not our separator
            elif s == ":" and depth == 0:
                colon = k
                break
            elif s == ";" and depth == 0:
                break
        # Loop body tokens: '{...}' or single statement.
        bi = close_p
        if bi < n and body[bi].spelling == "{":
            bend = self._match_in_brace(body, bi)
            loop_body = body[bi + 1 : bend - 1]
        else:
            bend = bi
            while bend < n and body[bend].spelling != ";":
                if body[bend].spelling == "(":
                    bend = self._match_in(body, bend)
                    continue
                bend += 1
            loop_body = body[bi:bend]

        if colon is not None:
            range_toks = header[colon + 1 :]
            range_sp = spell(range_toks)
            rtype = self._resolve_expr_type(
                range_toks, locals_, enclosing_class
            )
            self.fm.loops.append(
                RangeForLoop(
                    file=self.fm.path,
                    line=body[i].line,
                    range_spelling=range_sp,
                    range_type=rtype,
                    body=loop_body,
                    enclosing_class=enclosing_class,
                    enclosing_function=enclosing_function,
                )
            )
        else:
            # Classic for: X.begin()/X.cbegin() iteration.
            for k in range(len(header) - 3):
                if (
                    header[k].kind == "ident"
                    and header[k + 1].spelling in (".", "->")
                    and header[k + 2].spelling
                    in ("begin", "cbegin")
                    and header[k + 3].spelling == "("
                ):
                    base = [header[k]]
                    rtype = self._resolve_expr_type(
                        base, locals_, enclosing_class
                    )
                    self.fm.loops.append(
                        RangeForLoop(
                            file=self.fm.path,
                            line=body[i].line,
                            range_spelling=header[k].spelling
                            + ".begin()",
                            range_type=rtype,
                            body=loop_body,
                            enclosing_class=enclosing_class,
                            enclosing_function=enclosing_function,
                        )
                    )
                    break
        return close_p

    @staticmethod
    def _match_in(body, open_index):
        depth = 0
        i = open_index
        while i < len(body):
            s = body[i].spelling
            if s == "(":
                depth += 1
            elif s == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return len(body)

    @staticmethod
    def _match_in_brace(body, open_index):
        depth = 0
        i = open_index
        while i < len(body):
            s = body[i].spelling
            if s == "{":
                depth += 1
            elif s == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return len(body)

    def _resolve_expr_type(self, toks, locals_, enclosing_class):
        """Best-effort type of a range expression: a bare name, a
        `this->name`, or a one-level `obj.getter()`."""
        toks = [t for t in toks if t.spelling not in ("(", ")")]
        if not toks:
            return ""
        if (
            len(toks) >= 3
            and toks[0].spelling == "this"
            and toks[1].spelling == "->"
        ):
            toks = toks[2:]
        if len(toks) == 1 and toks[0].kind == "ident":
            return self._lookup_name_type(
                toks[0].spelling, locals_, enclosing_class
            )
        # obj.getter() — resolve obj, then the getter's return type.
        if (
            len(toks) >= 2
            and toks[0].kind == "ident"
            and toks[1].spelling in (".", "->")
            and len(toks) >= 3
            and toks[2].kind == "ident"
        ):
            base_t = self._lookup_name_type(
                toks[0].spelling, locals_, enclosing_class
            )
            cls_name = _head_class_name(base_t)
            for c in self.fm.classes:
                if c.name == cls_name:
                    for m in c.method(toks[2].spelling):
                        if m.return_type:
                            return self._expand_alias(m.return_type)
        return ""

    def _lookup_name_type(self, name, locals_, enclosing_class):
        if name in locals_:
            return self._expand_alias(locals_[name])
        for c in self.fm.classes:
            if c.name == enclosing_class:
                for f in c.fields:
                    if f.name == name:
                        return self._expand_alias(f.type_spelling)
        return ""

    def _expand_alias(self, type_sp, depth=0):
        if depth > 4:
            return type_sp
        head = _head_class_name(type_sp)
        if head in self.fm.aliases:
            return self._expand_alias(
                self.fm.aliases[head], depth + 1
            )
        return type_sp


def _head_class_name(type_sp):
    """'const std::unordered_map<K,V> &' -> 'unordered_map';
    'Foo' -> 'Foo'."""
    s = type_sp
    for junk in ("const ", "volatile "):
        s = s.replace(junk, " ")
    s = s.split("<", 1)[0]
    s = s.rsplit("::", 1)[-1]
    return s.strip().strip("&* ")


def _parse_params(toks):
    """Split a parameter token list on top-level commas into Params."""
    if not toks:
        return []
    groups = [[]]
    depth = 0
    for t in toks:
        s = t.spelling
        if s in ("(", "[", "{", "<"):
            depth += 1
        elif s in (")", "]", "}", ">"):
            depth = max(0, depth - 1)
        elif s == ">>":
            depth = max(0, depth - 2)
        elif s == "," and depth == 0:
            groups.append([])
            continue
        groups[-1].append(t)
    params = []
    for g in groups:
        if not g or (len(g) == 1 and g[0].spelling == "void"):
            continue
        # Drop a default argument.
        cut = len(g)
        d = 0
        for k, t in enumerate(g):
            s = t.spelling
            if s in ("(", "[", "{", "<"):
                d += 1
            elif s in (")", "]", "}", ">"):
                d = max(0, d - 1)
            elif s == "=" and d == 0:
                cut = k
                break
        g = g[:cut]
        name = ""
        type_toks = g
        if g and g[-1].kind == "ident" and len(g) > 1:
            name = g[-1].spelling
            type_toks = g[:-1]
        params.append(
            Param(name=name, type_spelling=spell(type_toks))
        )
    return params


def parse_source(path, text):
    """Parse one C++ source file into a FileModel."""
    return _Parser(path, text).parse()
