"""The normalized semantic model both frontends produce.

Rules never see libclang cursors or fallback-parser internals — they
see this model. That is what lets one rule implementation run against
real clang ASTs in CI (python3-clang + libclang) and against the
self-contained fallback parser on hosts with no clang at all, with
identical findings on the constructs the rules inspect.

Everything carries (file, line) so findings are clickable, and method
bodies are kept as token streams (kind/spelling/line) so rules can do
flow-ish queries (what is called, what is assigned, which names
appear) without re-reading source text.
"""

from dataclasses import dataclass, field


@dataclass
class Param:
    name: str
    type_spelling: str


@dataclass
class Method:
    name: str
    file: str
    line: int
    params: list  # [Param]
    return_type: str  # best effort; "" when unknown (ctor/dtor)
    is_const: bool = False
    is_ctor: bool = False
    is_static: bool = False
    is_virtual: bool = False
    # Token list of the body ({...} content) when the definition was
    # seen (in-class or out-of-line); None for pure declarations.
    body: list = None
    # Constructor member-init-list entries: [(member_name, line)].
    init_list: list = field(default_factory=list)


@dataclass
class Field:
    name: str
    file: str
    line: int
    type_spelling: str
    has_initializer: bool
    is_static: bool = False


@dataclass
class ClassInfo:
    name: str
    file: str
    line: int
    end_line: int = 0  # line of the closing brace (0 = unknown)
    bases: list = field(default_factory=list)  # base-class names
    fields: list = field(default_factory=list)  # [Field]
    methods: list = field(default_factory=list)  # [Method]

    def method(self, name):
        return [m for m in self.methods if m.name == name]

    def ctors(self):
        return [m for m in self.methods if m.is_ctor]


@dataclass
class RangeForLoop:
    file: str
    line: int
    # Spelling of the range expression, e.g. "by_key_" or
    # "journal.records()".
    range_spelling: str
    # Resolved (alias-expanded) type of the range expression, "" when
    # resolution failed.
    range_type: str
    body: list  # token list of the loop body
    enclosing_class: str  # "" at namespace scope
    enclosing_function: str


@dataclass
class VarDecl:
    """A named declaration with a resolved type: field, param, local,
    or type alias target — the determinism rule's raw material."""

    name: str
    file: str
    line: int
    type_spelling: str
    kind: str  # 'field' | 'local' | 'param' | 'alias'


@dataclass
class FileModel:
    path: str  # as given (repo-relative where possible)
    tokens: list = field(default_factory=list)  # full token stream
    classes: list = field(default_factory=list)  # [ClassInfo]
    enums: list = field(default_factory=list)  # enum type names
    aliases: dict = field(default_factory=dict)  # name -> target spelling
    free_functions: list = field(default_factory=list)  # [Method]
    loops: list = field(default_factory=list)  # [RangeForLoop]
    var_decls: list = field(default_factory=list)  # [VarDecl]
    lines: list = field(default_factory=list)  # raw source lines


class Model:
    """Whole-analysis view: every parsed file plus cross-file indexes."""

    def __init__(self):
        self.files = {}  # path -> FileModel
        self.frontend = "?"  # 'clang' | 'fallback'

    def add_file(self, fm):
        self.files[fm.path] = fm

    # ---- cross-file indexes (built lazily) ---------------------------

    def classes_by_name(self):
        idx = {}
        for fm in self.files.values():
            for c in fm.classes:
                # First definition wins; redefinitions across TUs are
                # the same class re-parsed from a shared header.
                idx.setdefault(c.name, c)
        return idx

    def enum_names(self):
        names = set()
        for fm in self.files.values():
            names.update(fm.enums)
        return names

    def functions_by_name(self):
        """name -> [Method] across free functions and all class
        methods that have bodies (for helper-indirection searches)."""
        idx = {}
        for fm in self.files.values():
            for f in fm.free_functions:
                if f.body is not None:
                    idx.setdefault(f.name, []).append(f)
            for c in fm.classes:
                for m in c.methods:
                    if m.body is not None:
                        idx.setdefault(m.name, []).append(m)
        return idx

    def all_classes(self):
        for fm in self.files.values():
            for c in fm.classes:
                yield fm, c

    def all_loops(self):
        for fm in self.files.values():
            for lp in fm.loops:
                yield fm, lp
