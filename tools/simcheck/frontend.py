"""Frontend selection + model finalization.

`load_model` prefers the libclang frontend (real ASTs, the CI
configuration) and degrades to the self-contained fallback parser
when libclang is absent — same model type, same rules, so the
analyzer stays useful on any host with a Python interpreter.
"""

import os
import sys

from . import clang_frontend, fallback_frontend
from .model import Model


def enumerate_sources(repo_root, paths):
    """Expand repo-relative path arguments into a sorted list of
    repo-relative .hpp/.cpp files."""
    out = []
    for p in paths:
        full = os.path.join(repo_root, p)
        if os.path.isfile(full):
            out.append(os.path.relpath(full, repo_root))
            continue
        for dirpath, _, names in os.walk(full):
            for name in sorted(names):
                if not name.endswith((".hpp", ".cpp", ".h", ".cc")):
                    continue
                out.append(
                    os.path.relpath(
                        os.path.join(dirpath, name), repo_root
                    )
                )
    return sorted(set(out))


def attach_out_of_line(model):
    """Attach `Cls::method` definitions found at namespace scope to
    their class's declaration, so rules see bodies and ctor init
    lists that live in sibling .cpp files."""
    classes = model.classes_by_name()
    for fm in model.files.values():
        for fn in fm.free_functions:
            if "::" not in fn.name:
                continue
            qual, base = fn.name.rsplit("::", 1)
            cls = classes.get(qual.split("::")[-1])
            if cls is None:
                continue
            target = None
            for m in cls.methods:
                if m.name != base:
                    continue
                if m.body is None and (
                    len(m.params) == len(fn.params)
                ):
                    target = m
                    break
                if m.body is None and target is None:
                    target = m
            if target is not None:
                target.body = fn.body
                if fn.init_list:
                    target.init_list = fn.init_list
                if fn.is_const:
                    target.is_const = True
            else:
                # Definition with no visible declaration (declared
                # via macro or unparsed region): add it.
                import copy

                m = copy.copy(fn)
                m.name = base
                cls.methods.append(m)


def _expand_alias(type_spelling, aliases, depth=4):
    sp = type_spelling
    for _ in range(depth):
        head = sp.split("<", 1)[0].strip()
        head = head.replace("const ", "").strip(" &*")
        head = head.rsplit("::", 1)[-1]
        if head in aliases and aliases[head] != sp:
            sp = aliases[head]
        else:
            break
    return sp


def _field_type(cls, name, classes, depth=3):
    for f in cls.fields:
        if f.name == name:
            return f.type_spelling
    if depth > 0:
        for b in cls.bases:
            base = classes.get(b.rsplit("::", 1)[-1])
            if base is not None:
                ty = _field_type(base, name, classes, depth - 1)
                if ty:
                    return ty
    return ""


def resolve_member_loops(model):
    """Second resolution pass for range-for loops whose range is a
    class member referenced from an out-of-line method body: the
    parser could not see the field then, the merged model can now."""
    classes = model.classes_by_name()
    aliases = {}
    for fm in model.files.values():
        aliases.update(fm.aliases)
    for fm in model.files.values():
        for lp in fm.loops:
            if lp.range_type:
                continue
            sp = lp.range_spelling.replace("this ->", "")
            sp = sp.replace("this->", "").strip()
            if not sp.isidentifier():
                continue
            candidates = []
            if lp.enclosing_class:
                candidates.append(lp.enclosing_class)
            fn = lp.enclosing_function or ""
            if "::" in fn:
                candidates.extend(reversed(fn.split("::")[:-1]))
            for cname in candidates:
                cls = classes.get(cname)
                if cls is None:
                    continue
                ty = _field_type(cls, sp, classes)
                if ty:
                    lp.range_type = _expand_alias(ty, aliases)
                    break


def load_model(repo_root, build_dir, paths, frontend="auto",
               stderr=sys.stderr):
    """Returns (model, sources). Raises clang_frontend.
    FrontendUnavailable when frontend='clang' cannot run."""
    sources = enumerate_sources(repo_root, paths)
    src_set = set(sources)

    model = None
    if frontend in ("auto", "clang"):
        try:
            model = clang_frontend.load(
                repo_root,
                build_dir or os.path.join(repo_root, "build"),
                src_set,
            )
            # TU-driven parsing reaches headers through includes;
            # parse any requested file the TUs never touched with
            # the fallback so scope stays complete.
            for rel in sources:
                if rel not in model.files:
                    _parse_into(model, repo_root, rel)
        except clang_frontend.FrontendUnavailable as e:
            if frontend == "clang":
                raise
            print(
                "simcheck: libclang unavailable ("
                + str(e)
                + "); using the self-contained fallback frontend",
                file=stderr,
            )

    if model is None:
        model = Model()
        model.frontend = "fallback"
        for rel in sources:
            _parse_into(model, repo_root, rel)

    attach_out_of_line(model)
    resolve_member_loops(model)
    return model, sources


def _parse_into(model, repo_root, rel):
    full = os.path.join(repo_root, rel)
    try:
        with open(full, encoding="utf-8", errors="replace") as f:
            text = f.read()
    except OSError:
        return
    model.add_file(fallback_frontend.parse_source(rel, text))
