"""Findings and output rendering (human text + JSON)."""

import json
from dataclasses import asdict, dataclass


@dataclass
class Finding:
    file: str
    line: int
    rule: str
    message: str
    contract: str = ""


def render_text(findings, out):
    for f in sorted(findings, key=lambda x: (x.file, x.line, x.rule)):
        print(f"{f.file}:{f.line}: [{f.rule}] {f.message}", file=out)
        if f.contract:
            print(f"    contract: {f.contract}", file=out)


def render_json(findings, meta, path):
    doc = {
        "tool": "simcheck",
        "frontend": meta.get("frontend", "?"),
        "rules": meta.get("rules", []),
        "files_analyzed": meta.get("files_analyzed", 0),
        "findings": [
            asdict(f)
            for f in sorted(
                findings, key=lambda x: (x.file, x.line, x.rule)
            )
        ],
        "finding_count": len(findings),
    }
    with open(path, "w", encoding="utf-8") as fp:
        json.dump(doc, fp, indent=2, sort_keys=True)
        fp.write("\n")
