"""simcheck command line.

    python3 tools/simcheck -p build [src/ ...]

Exit status: 0 clean, 1 findings, 2 environment/usage failure.
"""

import argparse
import os
import sys

from . import frontend as frontend_mod
from .clang_frontend import FrontendUnavailable
from .report import Finding, render_json, render_text
from .rules import RuleContext, all_rules
from .waivers import WaiverSet


def _repo_root_default():
    return os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )


def main(argv=None):
    ap = argparse.ArgumentParser(
        prog="simcheck",
        description=(
            "AST-grounded semantic analyzer for the simulator's "
            "determinism, snapshot and Clockable contracts "
            "(DESIGN.md section 15)."
        ),
    )
    ap.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="repo-relative files/directories to analyze "
        "(default: src/)",
    )
    ap.add_argument(
        "-p",
        "--build-dir",
        default=None,
        metavar="DIR",
        help="build directory containing compile_commands.json "
        "(used by the libclang frontend; the fallback frontend "
        "parses sources directly)",
    )
    ap.add_argument(
        "--root",
        default=_repo_root_default(),
        help="repository root (default: grandparent of this package)",
    )
    ap.add_argument(
        "--frontend",
        choices=("auto", "clang", "fallback"),
        default="auto",
        help="AST frontend: libclang when available (auto), forced "
        "libclang (clang, exit 2 if absent), or the pure-python "
        "parser (fallback)",
    )
    ap.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="NAME",
        help="run only this rule (repeatable)",
    )
    ap.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also write findings as JSON to FILE",
    )
    ap.add_argument(
        "--list-rules",
        action="store_true",
        help="list rules with their contracts and exit",
    )
    ap.add_argument(
        "--no-unused-waivers",
        action="store_true",
        help="do not report SIMCHECK-ALLOW waivers that suppressed "
        "nothing (used by fixture tests that run one rule at a "
        "time)",
    )
    args = ap.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        for r in rules:
            print(f"{r.NAME}")
            print(f"    {r.CONTRACT}")
        return 0

    known = {r.NAME for r in rules}
    if args.rule:
        unknown = set(args.rule) - known
        if unknown:
            print(
                "simcheck: unknown rule(s): "
                + ", ".join(sorted(unknown)),
                file=sys.stderr,
            )
            return 2

    paths = args.paths or ["src"]
    root = os.path.abspath(args.root)
    for p in paths:
        if not os.path.exists(os.path.join(root, p)):
            print(
                f"simcheck: no such path under {root}: {p}",
                file=sys.stderr,
            )
            return 2

    try:
        model, sources = frontend_mod.load_model(
            root,
            args.build_dir,
            paths,
            frontend=args.frontend,
        )
    except FrontendUnavailable as e:
        print(
            "simcheck: --frontend clang requested but " + str(e),
            file=sys.stderr,
        )
        return 2

    waivers = WaiverSet()
    for rel in sources:
        fm = model.files.get(rel)
        lines = fm.lines if fm is not None and fm.lines else None
        if lines is None:
            try:
                with open(
                    os.path.join(root, rel),
                    encoding="utf-8",
                    errors="replace",
                ) as f:
                    lines = f.read().splitlines()
            except OSError:
                lines = []
        waivers.scan_file(rel, lines)

    ctx = RuleContext(model, waivers, paths, rules=args.rule)
    ran = []
    for r in rules:
        if not ctx.enabled(r.NAME):
            continue
        ran.append(r.NAME)
        r.run(ctx)

    findings = list(ctx.findings)
    for rel, line, text in waivers.syntax_findings():
        findings.append(
            Finding(
                file=rel,
                line=line,
                rule="waiver-syntax",
                message="malformed waiver '"
                + text[:60]
                + "' — write `SIMCHECK-ALLOW(rule-name): reason` "
                "(both the rule and the reason are mandatory)",
            )
        )
    if not args.no_unused_waivers and args.rule is None:
        for w in waivers.unused():
            findings.append(
                Finding(
                    file=w.file,
                    line=w.line,
                    rule="unused-waiver",
                    message=f"SIMCHECK-ALLOW({w.rule}) no longer "
                    "suppresses any finding — delete it so waivers "
                    "cannot rot",
                )
            )

    meta = {
        "frontend": model.frontend,
        "rules": ran,
        "files_analyzed": len(sources),
    }
    if args.json:
        render_json(findings, meta, args.json)
    if findings:
        render_text(findings, sys.stderr)
        print(
            f"simcheck: {len(findings)} finding(s) "
            f"[frontend={model.frontend}, "
            f"{len(sources)} file(s)]",
            file=sys.stderr,
        )
        return 1
    print(
        f"simcheck: clean [frontend={model.frontend}, "
        f"{len(sources)} file(s), rules: {', '.join(ran)}]"
    )
    return 0
