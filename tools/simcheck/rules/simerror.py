"""simerror-discipline: the integrity layer owns `throw`.

Simulator code raises failures through SIM_CHECK / SIM_INVARIANT /
raiseSimError (src/sim/check.*) so every error carries machine context
(cycle, SM, kernel, module). A raw `throw expr` anywhere else in src/
loses that context — and an uncaught foreign exception type slips
past every catch(SimError&) recovery path in the sweep engine, the
campaign worker and the replay detector.

Allowed without waivers:
  * src/sim/check.hpp / check.cpp — the macros and raiseSimError
    themselves;
  * bare `throw;` rethrows — re-raising an in-flight error preserves
    its type and context (the sweep engine's memo-cache poison path).

Token-level, so `throw` in comments or strings never matches, and a
throw hidden in a macro *definition* is caught at the definition (the
lexer keeps directives opaque, so check.hpp's own macros are the only
definition site, and it is exempt).
"""

NAME = "simerror-discipline"
CONTRACT = (
    "only SIM_CHECK / SIM_INVARIANT / raiseSimError (sim/check) "
    "raise; everything else in src/ either propagates SimError or "
    "rethrows (DESIGN.md section 8)"
)

EXEMPT_FILES = ("src/sim/check.hpp", "src/sim/check.cpp")


def run(ctx):
    for rel, fm in sorted(ctx.model.files.items()):
        if not ctx.in_scope(rel):
            continue
        if rel.replace("\\", "/") in EXEMPT_FILES:
            continue
        toks = fm.tokens
        for i, t in enumerate(toks):
            if t.kind != "kw" or t.spelling != "throw":
                continue
            j = i + 1
            while j < len(toks) and toks[j].kind == "pp":
                j += 1
            if j < len(toks) and toks[j].spelling == ";":
                continue  # bare rethrow
            # `throw()` exception-specs in ancient signatures.
            if j < len(toks) and toks[j].spelling == "(" and (
                j + 1 < len(toks) and toks[j + 1].spelling == ")"
            ):
                continue
            ctx.emit(
                rel,
                t.line,
                NAME,
                "raw `throw` outside sim/check — raise through "
                "SIM_CHECK / SIM_INVARIANT / raiseSimError so the "
                "error carries cycle/SM/kernel context and stays "
                "catchable as SimError",
                CONTRACT,
            )
