"""snapshot-coverage-v2: AST-grounded snapshot completeness.

Supersedes the textual snapshot-coverage rule in tools/lint_sim.py,
whose regexes cannot see three things this rule can:

  * inherited members — fields a class gets from a base that has no
    snapshot pair of its own are the derived class's responsibility;
  * helper indirection — a private `snapshotQueues(w)` or a free
    `snapshotKernelStats(w, s)` helper serializes members the regex
    never connects to the snapshot body (the effective body here is
    the snapshot/restore bodies plus, transitively, every called
    helper's body);
  * comment/string noise — a member named in a doc comment satisfies
    the regex but not a token-stream search.

A field is covered when its name appears as a token in the effective
snapshot+restore body, or it carries `// SNAPSHOT-SKIP(reason)` (the
established marker, shared with lint_sim.py) or
`SIMCHECK-ALLOW(snapshot-coverage-v2): reason`.

When a base class has its own snapshot pair, the derived effective
body must mention the base (Base::snapshot(w) / Base::restore(r) or
any token of the base name) — a silently-dropped base subobject is
the inheritance-shaped version of a forgotten field.
"""

from .uninit_member import is_snapshot_bearing

NAME = "snapshot-coverage-v2"
CONTRACT = (
    "every non-static data member of a snapshot-bearing class "
    "(including inherited members) is serialized by "
    "snapshot()/restore() — directly or through helpers — or carries "
    "an explicit skip waiver (DESIGN.md section 15)"
)

_HELPERY = ("snapshot", "restore")


def _effective_body(cls, fn_index, side, max_depth=3):
    """Token-name set of one side's body ('snapshot' or 'restore')
    plus the bodies of transitively called helpers (methods of the
    class, and free functions whose name mentions
    snapshot/restore)."""
    names = set()
    own_methods = {m.name for m in cls.methods}
    visited = set()

    def walk(body, depth):
        if body is None:
            return
        for i, t in enumerate(body):
            if t.kind != "ident":
                continue
            names.add(t.spelling)
            if depth >= max_depth:
                continue
            if i + 1 < len(body) and body[i + 1].spelling == "(":
                callee = t.spelling
                is_helper = (
                    callee in own_methods
                    or any(h in callee.lower() for h in _HELPERY)
                )
                if not is_helper or callee in visited:
                    continue
                visited.add(callee)
                for m in fn_index.get(callee, ()):
                    walk(m.body, depth + 1)

    for m in cls.methods:
        if m.name == side:
            walk(m.body, 0)
    return names


def run(ctx):
    model = ctx.model
    classes = model.classes_by_name()
    fn_index = model.functions_by_name()

    for fm, cls in model.all_classes():
        if not ctx.in_scope(fm.path):
            continue
        if not is_snapshot_bearing(cls):
            continue

        # Coverage is judged per side: a field present in restore()
        # but dropped from snapshot() is exactly the asymmetry that
        # corrupts checkpoints, so a union of the two bodies would
        # mask the bug.
        saved = _effective_body(cls, fn_index, "snapshot")
        restored = _effective_body(cls, fn_index, "restore")
        covered = saved | restored

        # Required fields: own ones, plus fields inherited from bases
        # that cannot serialize themselves.
        required = [(cls, f) for f in cls.fields]
        for base_name in cls.bases:
            base = classes.get(base_name)
            if base is None:
                continue
            if is_snapshot_bearing(base):
                if base_name not in covered:
                    ctx.emit(
                        cls.file,
                        cls.line,
                        NAME,
                        f"class '{cls.name}' inherits from "
                        f"'{base_name}', which has its own "
                        "snapshot/restore pair, but never invokes "
                        f"it ('{base_name}::snapshot'/'restore' "
                        "do not appear in the snapshot bodies) — "
                        "the base subobject is silently dropped "
                        "from checkpoints",
                        CONTRACT,
                    )
            else:
                required += [(base, f) for f in base.fields]

        for owner, f in required:
            if f.is_static:
                continue
            if f.name in saved and f.name in restored:
                continue
            inherited = (
                f" (inherited from '{owner.name}')"
                if owner is not cls
                else ""
            )
            if f.name not in covered:
                what = (
                    "is never serialized — no token of its name "
                    "reaches the effective snapshot()/restore() "
                    "bodies (helpers included)"
                )
            elif f.name in restored:
                what = (
                    "is read back by restore() but never written "
                    "by snapshot() — restores will consume bytes "
                    "that were never produced"
                )
            else:
                what = (
                    "is written by snapshot() but never read back "
                    "by restore() — the value is silently lost "
                    "across a checkpoint round-trip"
                )
            ctx.emit(
                f.file,
                f.line,
                NAME,
                f"member '{f.name}'{inherited} of snapshot-bearing "
                f"class '{cls.name}' {what}; serialize it on both "
                "sides (and bump kSnapshotFormatVersion) or waive "
                "with `// SNAPSHOT-SKIP(reason)`",
                CONTRACT,
            )
