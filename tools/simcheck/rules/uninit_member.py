"""uninit-member: scalar fields of snapshot-bearing classes must be
initialized — in-class or in every constructor's member-init list.

An uninitialized int/bool/pointer/enum field in a snapshotted class is
the classic divergence seed: two runs construct the object with
different stack/heap garbage, the field is serialized (or influences
what is), and replay diverges with no error. Class-typed members are
exempt (their default constructors run); arrays of scalars are not.
"""

NAME = "uninit-member"
CONTRACT = (
    "every scalar data member of a class participating in "
    "snapshot/restore must have a deterministic initial value: an "
    "in-class initializer or coverage in every constructor's "
    "member-init list (DESIGN.md section 15)"
)

SCALAR_HEADS = frozenset(
    """int unsigned long short char bool float double size_t
    ssize_t ptrdiff_t intptr_t uintptr_t int8_t int16_t int32_t
    int64_t uint8_t uint16_t uint32_t uint64_t pid_t off_t time_t
    signed wchar_t char8_t char16_t char32_t""".split()
)


def is_snapshot_bearing(cls):
    """Declares the snapshot/restore member pair (either the
    SnapshotWriter/Reader form or the Gpu-level GpuSnapshot form)."""
    has_snap = False
    has_restore = False
    for m in cls.methods:
        if m.name == "snapshot":
            if any(
                "SnapshotWriter" in p.type_spelling for p in m.params
            ) or "GpuSnapshot" in (m.return_type or ""):
                has_snap = True
        elif m.name == "restore":
            if any(
                "SnapshotReader" in p.type_spelling
                or "GpuSnapshot" in p.type_spelling
                for p in m.params
            ):
                has_restore = True
    return has_snap and has_restore


def _is_scalar_type(type_sp, enum_names):
    s = type_sp.replace("const", " ").replace("volatile", " ")
    s = s.replace("&", " ").strip()
    if not s:
        return False
    if s.endswith("*"):
        return True
    if "<" in s:  # templated => class type
        return False
    head = s.rsplit("::", 1)[-1].strip()
    parts = head.split()
    if all(p in SCALAR_HEADS for p in parts) and parts:
        return True
    if head in enum_names:
        return True
    return False


def run(ctx):
    enum_names = ctx.model.enum_names()
    for fm, cls in ctx.model.all_classes():
        if not ctx.in_scope(fm.path):
            continue
        if not is_snapshot_bearing(cls):
            continue
        ctors = [m for m in cls.methods if m.is_ctor]
        # Constructors that neither have a body nor an init list in
        # the model (pure declarations whose definitions were not
        # found, `= default`, `= delete`) count as covering nothing.
        for f in cls.fields:
            if f.is_static or f.has_initializer:
                continue
            if not _is_scalar_type(f.type_spelling, enum_names):
                continue
            if ctors and all(
                any(name == f.name for name, _ in c.init_list)
                for c in ctors
                if True
            ):
                continue
            where = (
                "no constructor covers it"
                if not ctors
                else "not every constructor's init list covers it"
            )
            ctx.emit(
                f.file,
                f.line,
                NAME,
                f"field '{f.name}' ({f.type_spelling}) of "
                f"snapshot-bearing class '{cls.name}' has no "
                f"in-class initializer and {where} — its initial "
                "value is construction garbage, the classic "
                "replay-divergence seed",
                CONTRACT,
            )
