"""determinism-hazard: constructs whose observable order depends on
hash-table layout or pointer values.

Four hazards, all of which have reproduced as replay divergence in
simulators of this class:

  1. Iteration over std::unordered_map/unordered_set. Bucket order is
     implementation- and ASLR-dependent; any effect of the loop that
     is not provably commutative (a write to simulator state, metrics
     output, a journal/wire append) makes run output
     machine-dependent. The sink classifier names what the loop body
     touches; a loop with no recognizable sink still flags, because
     un-classifiable flow is exactly the dangerous kind. Provably
     order-independent walks are waived with
     SIMCHECK-ALLOW(determinism-hazard): reason.
  2. Ordered containers keyed by pointers (std::map<T*,..>,
     std::set<T*>): iteration order is allocation order.
  3. std::hash<T*> instantiations: hashes differ across runs.
  4. `<`/`>` between two pointer-typed variables outside a container
     comparator: ordering by address.
"""

NAME = "determinism-hazard"
CONTRACT = (
    "simulator results must be a pure function of (config, workload, "
    "seed): no observable effect may depend on hash-bucket order or "
    "pointer values (DESIGN.md section 15)"
)

UNORDERED = (
    "unordered_map",
    "unordered_set",
    "unordered_multimap",
    "unordered_multiset",
)

ORDERED_KEYED = ("map", "set", "multimap", "multiset")

# Method/function names whose call inside an unordered walk is an
# order-sensitive sink (state mutation, output, journal/wire writes).
SINK_CALLS = frozenset(
    """push_back emplace_back append insert emplace write writeFrame
    u8 u16 u32 u64 i64 f64 str vecU64 section unit resolve record
    emit add log print flush send post enqueue""".split()
)


def _first_template_arg(type_spelling):
    """'std::map<Foo *, Bar>' -> 'Foo *'; '' when not templated."""
    i = type_spelling.find("<")
    if i < 0:
        return ""
    depth = 0
    start = i + 1
    for j in range(i, len(type_spelling)):
        c = type_spelling[j]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return type_spelling[start:j].strip()
        elif c == "," and depth == 1:
            return type_spelling[start:j].strip()
    return ""


def _container_head(type_spelling):
    s = type_spelling.replace("const ", " ")
    s = s.split("<", 1)[0]
    return s.rsplit("::", 1)[-1].strip(" &*")


def _is_pointer(type_arg):
    return type_arg.rstrip().endswith("*")


def _classify_sink(body):
    """Name the first order-sensitive effect in a loop body, or ''."""
    n = len(body)
    for i, t in enumerate(body):
        s = t.spelling
        if s == "<<":
            return "streams output ('<<')"
        if t.kind == "ident" and i + 1 < n and (
            body[i + 1].spelling == "("
        ):
            if s in SINK_CALLS:
                return f"calls '{s}(...)'"
        if s == "=" and i > 0:
            prev = body[i - 1]
            if prev.kind == "ident" and prev.spelling.endswith("_"):
                return f"writes member '{prev.spelling}'"
            if prev.spelling == "]":
                return "writes through an indexed lvalue"
        if s in ("+=", "-=", "|=", "&=", "^="):
            # Commutative reductions into a scalar are order-safe for
            # integers but NOT for floats; report only float-ish or
            # member targets.
            if i > 0 and body[i - 1].kind == "ident" and (
                body[i - 1].spelling.endswith("_")
            ):
                return (
                    f"accumulates into member "
                    f"'{body[i - 1].spelling}'"
                )
    return ""


def run(ctx):
    model = ctx.model

    # 1. unordered-container iteration.
    for fm, lp in model.all_loops():
        if not ctx.in_scope(fm.path):
            continue
        head = _container_head(lp.range_type)
        if head not in UNORDERED:
            continue
        sink = _classify_sink(lp.body)
        effect = (
            sink
            if sink
            else "order-dependent effects could not be ruled out"
        )
        ctx.emit(
            fm.path,
            lp.line,
            NAME,
            f"iteration over '{lp.range_spelling}' "
            f"(std::{head}) — bucket order is not deterministic "
            f"across hosts/runs and the loop {effect}; iterate a "
            "key-sorted copy, iterate the submission-order job "
            "list instead, or waive a provably order-independent "
            "walk",
            CONTRACT,
        )

    for rel, fm in sorted(model.files.items()):
        if not ctx.in_scope(rel):
            continue

        # 2. pointer-keyed ordered containers (fields, locals,
        # params, aliases).
        decls = [
            (f.line, f.type_spelling, f.name)
            for c in fm.classes
            for f in c.fields
        ]
        decls += [
            (d.line, d.type_spelling, d.name) for d in fm.var_decls
        ]
        decls += [(0, target, name)
                  for name, target in fm.aliases.items()]
        for line, type_sp, name in decls:
            head = _container_head(type_sp)
            if head in ORDERED_KEYED:
                key = _first_template_arg(type_sp)
                if _is_pointer(key):
                    ctx.emit(
                        rel,
                        line,
                        NAME,
                        f"'{name}' is a std::{head} keyed by "
                        f"'{key}' — iteration order is allocation "
                        "order, which varies run to run; key by a "
                        "stable id (KernelId, SmId, content hash) "
                        "instead",
                        CONTRACT,
                    )

        # 3. std::hash<T*>.
        toks = fm.tokens
        for i, t in enumerate(toks):
            if t.kind != "ident" or t.spelling != "hash":
                continue
            if i + 1 >= len(toks) or toks[i + 1].spelling != "<":
                continue
            if i >= 1 and toks[i - 1].spelling not in ("::",):
                continue
            depth = 0
            arg = []
            for j in range(i + 1, min(i + 40, len(toks))):
                s = toks[j].spelling
                if s == "<":
                    depth += 1
                    if depth == 1:
                        continue
                elif s == ">":
                    depth -= 1
                    if depth == 0:
                        break
                arg.append(s)
            arg_sp = " ".join(arg)
            if _is_pointer(arg_sp):
                ctx.emit(
                    rel,
                    t.line,
                    NAME,
                    f"std::hash<{arg_sp}> — pointer hashes differ "
                    "across runs (ASLR); hash a stable id or the "
                    "content key instead",
                    CONTRACT,
                )

        # 4. pointer '<'/'>' comparisons between known pointer vars.
        ptr_names = set()
        for c in fm.classes:
            for f in c.fields:
                if _is_pointer(f.type_spelling):
                    ptr_names.add(f.name)
        for d in fm.var_decls:
            if _is_pointer(d.type_spelling):
                ptr_names.add(d.name)
        for i in range(1, len(toks) - 1):
            t = toks[i]
            if t.kind != "punct" or t.spelling not in ("<", ">"):
                continue
            a, b = toks[i - 1], toks[i + 1]
            if (
                a.kind == "ident"
                and b.kind == "ident"
                and a.spelling in ptr_names
                and b.spelling in ptr_names
                # `x < y (` would be a template instantiation of a
                # function pointer — not with two variables.
            ):
                ctx.emit(
                    rel,
                    t.line,
                    NAME,
                    f"pointer comparison '{a.spelling} "
                    f"{t.spelling} {b.spelling}' orders by "
                    "address, which varies run to run; compare "
                    "stable ids instead",
                    CONTRACT,
                )
