"""Rule framework: each rule module exposes NAME, CONTRACT and
run(ctx) -> None, emitting findings through the shared RuleContext
(which applies waivers centrally)."""

from ..report import Finding


class RuleContext:
    def __init__(self, model, waivers, scope_prefixes, rules=None):
        self.model = model
        self.waivers = waivers
        self._scope = tuple(scope_prefixes)
        self.findings = []
        self._enabled = set(rules) if rules else None

    def enabled(self, rule_name):
        return self._enabled is None or rule_name in self._enabled

    def in_scope(self, rel):
        if not self._scope:
            return True
        return any(
            rel == p or rel.startswith(p.rstrip("/") + "/")
            for p in self._scope
        )

    def emit(self, rel, line, rule, message, contract=""):
        if self.waivers.suppresses(rel, line, rule):
            return
        self.findings.append(
            Finding(
                file=rel,
                line=line,
                rule=rule,
                message=message,
                contract=contract,
            )
        )

    def emit_unwaivable(self, rel, line, rule, message, contract=""):
        self.findings.append(
            Finding(
                file=rel,
                line=line,
                rule=rule,
                message=message,
                contract=contract,
            )
        )


def all_rules():
    from . import (
        clockable_contract,
        determinism,
        simerror,
        snapshot_coverage,
        uninit_member,
    )

    return [
        determinism,
        uninit_member,
        snapshot_coverage,
        clockable_contract,
        simerror,
    ]
