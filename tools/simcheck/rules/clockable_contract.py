"""clockable-contract: every ticked component reports a fast-path
horizon, with the exact signature the Gpu run loop calls.

A class declaring `tick(Cycle ...)` must declare (or inherit)

    Cycle nextEventCycle(Cycle now) const;

or carry a FASTPATH-SKIP(reason) waiver in its class body (or
SIMCHECK-ALLOW(clockable-contract): reason). Checked on the parsed
AST, so a macro-generated or template tick cannot slip past the
regex in tools/lint_sim.py — and unlike the regex, a *wrong*
signature (non-Cycle return, extra params, missing const) is a
finding too: the detection trait has_next_event_cycle_v
(sim/clockable.hpp) would silently evaluate false and the component
would be invisible to the skip decision.
"""

NAME = "clockable-contract"
CONTRACT = (
    "a component exposing tick(Cycle ...) also exposes "
    "`Cycle nextEventCycle(Cycle) const` so Gpu::run's fast path can "
    "skip dead cycles without breaking strict-vs-fast bit-identity "
    "(sim/clockable.hpp, DESIGN.md section 13)"
)


def _mentions_cycle(type_sp):
    t = type_sp.replace("const", " ").replace("&", " ")
    return t.strip().rsplit("::", 1)[-1].strip() == "Cycle"


def _has_cycle_tick(cls):
    for m in cls.method("tick"):
        if m.params and _mentions_cycle(m.params[0].type_spelling):
            return m
    return None


def _find_next_event(cls, classes, depth=0):
    for m in cls.method("nextEventCycle"):
        return m, cls
    if depth > 4:
        return None, None
    for base_name in cls.bases:
        base = classes.get(base_name)
        if base is not None:
            m, owner = _find_next_event(base, classes, depth + 1)
            if m is not None:
                return m, owner
    return None, None


def run(ctx):
    classes = ctx.model.classes_by_name()
    for fm, cls in ctx.model.all_classes():
        if not ctx.in_scope(fm.path):
            continue
        tick = _has_cycle_tick(cls)
        if tick is None:
            continue

        nec, owner = _find_next_event(cls, classes)
        if nec is None:
            last = cls.end_line if cls.end_line else cls.line + 200
            if ctx.waivers.suppresses_in_span(
                fm.path, cls.line, last, NAME
            ):
                continue
            ctx.emit_unwaivable(
                fm.path,
                tick.line,
                NAME,
                f"class '{cls.name}' declares tick(Cycle ...) but "
                "neither declares nor inherits nextEventCycle() — "
                "the fast path cannot see this component's events; "
                "implement the Clockable horizon "
                "(sim/clockable.hpp) or waive with "
                "`// FASTPATH-SKIP(reason)` in the class body",
                CONTRACT,
            )
            continue

        problems = []
        if not _mentions_cycle(nec.return_type or ""):
            problems.append(
                f"returns '{nec.return_type or '?'}' instead of "
                "Cycle"
            )
        if len(nec.params) != 1 or not _mentions_cycle(
            nec.params[0].type_spelling
        ):
            problems.append(
                "does not take exactly one Cycle parameter"
            )
        if not nec.is_const:
            problems.append("is not const")
        if problems:
            ctx.emit(
                nec.file,
                nec.line,
                NAME,
                f"'{(owner or cls).name}::nextEventCycle' "
                + "; ".join(problems)
                + " — has_next_event_cycle_v<T> "
                "(sim/clockable.hpp) evaluates false for this "
                "signature, so the fast path silently treats the "
                "component as horizon-less",
                CONTRACT,
            )
