"""C++ token stream for the simcheck fallback frontend.

Not a conforming lexer — a pragmatic one that is exact about the three
things the rules need and the regex lint gets wrong:

  * comments and string/char literals never leak into code tokens, so
    a member name in a doc comment cannot satisfy snapshot coverage
    and a `throw` in a string cannot trip simerror-discipline;
  * preprocessor directives (with line continuations) are captured as
    single opaque tokens, so macro *definitions* are invisible to
    statement-level rules while macro *uses* still appear as calls;
  * every token carries its 1-based line, so findings point at source.

Raw strings, digit separators and UDLs are handled; trigraphs are not
(the repo bans them implicitly by never using them).
"""

from dataclasses import dataclass

KEYWORDS = frozenset(
    """alignas alignof asm auto bool break case catch char char8_t
    char16_t char32_t class concept const consteval constexpr constinit
    const_cast continue co_await co_return co_yield decltype default
    delete do double dynamic_cast else enum explicit export extern
    false float for friend goto if inline int long mutable namespace
    new noexcept nullptr operator private protected public register
    reinterpret_cast requires return short signed sizeof static
    static_assert static_cast struct switch template this thread_local
    throw true try typedef typeid typename union unsigned using
    virtual void volatile wchar_t while""".split()
)

# Multi-character punctuators, longest first so maximal munch wins.
PUNCTUATORS = [
    "<<=", ">>=", "<=>", "...", "->*", "::", "->", "++", "--", "<<",
    ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", ".*",
]


@dataclass
class Token:
    kind: str  # 'ident' | 'kw' | 'num' | 'str' | 'char' | 'punct' | 'pp'
    spelling: str
    line: int

    def __repr__(self):
        return f"{self.kind}:{self.spelling!r}@{self.line}"


def lex(text):
    """Tokenize C++ source, dropping comments, keeping pp directives
    as single tokens. Returns a list of Token."""
    toks = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True

    def peek(k=0):
        j = i + k
        return text[j] if j < n else ""

    while i < n:
        c = text[i]

        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue

        # Comments.
        if c == "/" and peek(1) == "/":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if c == "/" and peek(1) == "*":
            start_line = line
            i += 2
            while i < n and not (text[i] == "*" and peek(1) == "/"):
                if text[i] == "\n":
                    line += 1
                i += 1
            i = min(i + 2, n)
            del start_line
            continue

        # Preprocessor directive: swallow through continuations.
        if c == "#" and at_line_start:
            start = i
            start_line = line
            while i < n:
                if text[i] == "\\" and peek(1) == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                # Comments inside directives still end or continue them.
                if text[i] == "/" and peek(1) == "/":
                    while i < n and text[i] != "\n":
                        i += 1
                    break
                if text[i] == "/" and peek(1) == "*":
                    i += 2
                    while i < n and not (
                        text[i] == "*" and peek(1) == "/"
                    ):
                        if text[i] == "\n":
                            line += 1
                        i += 1
                    i = min(i + 2, n)
                    continue
                i += 1
            toks.append(Token("pp", text[start:i], start_line))
            continue

        at_line_start = False

        # Raw string literal R"delim( ... )delim".
        if c == "R" and peek(1) == '"':
            j = i + 2
            while j < n and text[j] not in "(\n":
                j += 1
            if j < n and text[j] == "(":
                delim = text[i + 2 : j]
                close = ")" + delim + '"'
                end = text.find(close, j + 1)
                if end < 0:
                    end = n
                else:
                    end += len(close)
                toks.append(Token("str", '""', line))
                line += text.count("\n", i, end)
                i = end
                continue

        # String / char literals (with encoding prefixes).
        if c in "\"'" or (
            c in "uUL"
            and (
                peek(1) in "\"'"
                or (c == "u" and peek(1) == "8" and peek(2) in "\"'")
            )
        ):
            j = i
            while j < n and text[j] not in "\"'":
                j += 1
            quote = text[j]
            k = j + 1
            while k < n:
                if text[k] == "\\":
                    k += 2
                    continue
                if text[k] == quote or text[k] == "\n":
                    break
                k += 1
            k = min(k + 1, n)
            # UDL suffix.
            while k < n and (text[k].isalnum() or text[k] == "_"):
                k += 1
            kind = "str" if quote == '"' else "char"
            toks.append(Token(kind, quote + quote, line))
            line += text.count("\n", i, k)
            i = k
            continue

        # Identifier / keyword.
        if c.isalpha() or c == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            toks.append(
                Token("kw" if word in KEYWORDS else "ident", word, line)
            )
            i = j
            continue

        # Number (pp-number: digits, quotes, exponents, dots, suffix).
        if c.isdigit() or (c == "." and peek(1).isdigit()):
            j = i
            while j < n:
                ch = text[j]
                if ch.isalnum() or ch in "._'":
                    j += 1
                elif ch in "+-" and j > i and text[j - 1] in "eEpP":
                    j += 1
                else:
                    break
            toks.append(Token("num", text[i:j], line))
            i = j
            continue

        # Punctuators, maximal munch.
        matched = None
        for p in PUNCTUATORS:
            if text.startswith(p, i):
                matched = p
                break
        if matched is None:
            matched = c
        toks.append(Token("punct", matched, line))
        i += len(matched)

    return toks


def match_brace(toks, open_index):
    """Index one past the '}' matching toks[open_index] == '{'
    (or len(toks) if unbalanced)."""
    depth = 0
    i = open_index
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "punct":
            if t.spelling == "{":
                depth += 1
            elif t.spelling == "}":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def match_paren(toks, open_index):
    """Index one past the ')' matching toks[open_index] == '('."""
    depth = 0
    i = open_index
    n = len(toks)
    while i < n:
        t = toks[i]
        if t.kind == "punct":
            if t.spelling == "(":
                depth += 1
            elif t.spelling == ")":
                depth -= 1
                if depth == 0:
                    return i + 1
        i += 1
    return n


def spell(toks):
    """Join token spellings with minimal spacing (for type spellings
    and diagnostics)."""
    out = []
    for t in toks:
        if (
            out
            and (out[-1][-1].isalnum() or out[-1][-1] == "_")
            and (t.spelling[0].isalnum() or t.spelling[0] == "_")
        ):
            out.append(" ")
        out.append(t.spelling)
    return "".join(out)
