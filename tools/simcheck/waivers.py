"""SIMCHECK-ALLOW waivers.

A finding is waived by a marker on its own line, or by a marker on
the line above when that line holds nothing but the comment (a
marker trailing code on the previous line belongs to THAT line, not
the next one — otherwise a waiver on one field would silently cover
its neighbor):

    // SIMCHECK-ALLOW(rule-name): reason the contract is satisfied

The rule name and the reason are both mandatory — a waiver without a
reason is itself a finding (`waiver-syntax`), and a waiver that no
longer suppresses anything is itself a finding (`unused-waiver`), so
waivers cannot rot. Two legacy markers from tools/lint_sim.py are
honored where their semantics match an AST rule:

    // SNAPSHOT-SKIP(reason)   — snapshot-coverage-v2, on a field
    // FASTPATH-SKIP(reason)   — clockable-contract, in a class body

(Their *unused* detection lives in lint_sim.py's unused-waiver rule,
which owns those marker namespaces.)
"""

import re

ALLOW_RE = re.compile(
    r"SIMCHECK-ALLOW\((?P<rule>[\w-]+)\)\s*:\s*(?P<reason>\S.*)"
)
# Prose that merely mentions the marker name (docs, this file) is
# not a waiver attempt; only `SIMCHECK-ALLOW(` starts one.
ALLOW_ANY_RE = re.compile(r"SIMCHECK-ALLOW\(")

LEGACY_MARKERS = {
    "snapshot-coverage-v2": re.compile(
        r"SNAPSHOT-SKIP\([^)]*\S[^)]*\)"
    ),
    "clockable-contract": re.compile(
        r"FASTPATH-SKIP\([^)]*\S[^)]*\)"
    ),
}


class Waiver:
    __slots__ = ("file", "line", "rule", "reason", "used")

    def __init__(self, file, line, rule, reason):
        self.file = file
        self.line = line
        self.rule = rule
        self.reason = reason
        self.used = False


class WaiverSet:
    """All waivers of one analysis run, indexed by (file, line)."""

    def __init__(self):
        self._by_loc = {}  # (file, line) -> [Waiver]
        self._syntax_errors = []  # (file, line, text)
        self._file_lines = {}  # file -> raw lines

    def scan_file(self, rel, lines):
        self._file_lines[rel] = lines
        for i, raw in enumerate(lines, 1):
            if not ALLOW_ANY_RE.search(raw):
                continue
            m = ALLOW_RE.search(raw)
            if not m:
                self._syntax_errors.append((rel, i, raw.strip()))
                continue
            w = Waiver(rel, i, m.group("rule"), m.group("reason"))
            self._by_loc.setdefault((rel, i), []).append(w)

    def lines(self, rel):
        return self._file_lines.get(rel, [])

    def _comment_only(self, rel, ln):
        lines = self._file_lines.get(rel, [])
        if not 1 <= ln <= len(lines):
            return False
        return lines[ln - 1].lstrip().startswith(("//", "/*", "*"))

    def suppresses(self, rel, line, rule):
        """True when a matching waiver sits on the finding's line, or
        on a comment-only line above it. Marks the waiver used."""
        candidates = [line]
        if self._comment_only(rel, line - 1):
            candidates.append(line - 1)
        for ln in candidates:
            for w in self._by_loc.get((rel, ln), ()):
                if w.rule == rule:
                    w.used = True
                    return True
        # Legacy markers (same rule, same placement convention).
        legacy = LEGACY_MARKERS.get(rule)
        if legacy is not None:
            lines = self._file_lines.get(rel, [])
            for ln in candidates:
                if 1 <= ln <= len(lines) and legacy.search(
                    lines[ln - 1]
                ):
                    return True
        return False

    def suppresses_in_span(self, rel, first, last, rule):
        """True when any matching waiver (or legacy marker) appears in
        [first, last] — for class-scoped waivers like the Clockable
        contract's FASTPATH-SKIP."""
        hit = False
        for (f, ln), ws in self._by_loc.items():
            if f != rel or not first <= ln <= last:
                continue
            for w in ws:
                if w.rule == rule:
                    w.used = True
                    hit = True
        if hit:
            return True
        legacy = LEGACY_MARKERS.get(rule)
        if legacy is not None:
            lines = self._file_lines.get(rel, [])
            for ln in range(first, min(last, len(lines)) + 1):
                if legacy.search(lines[ln - 1]):
                    return True
        return False

    def syntax_findings(self):
        return list(self._syntax_errors)

    def unused(self):
        """SIMCHECK-ALLOW waivers that suppressed nothing this run."""
        out = []
        for ws in self._by_loc.values():
            for w in ws:
                if not w.used:
                    out.append(w)
        return sorted(out, key=lambda w: (w.file, w.line))
